"""Blocking JSON-lines client for the inference server.

Stdlib-only (``socket``), one request per call, suitable for CLI use,
smoke tests and closed-loop benchmarking.  Concurrency-hungry callers
(the benchmark's open-connection workers, the test suite) speak the
protocol directly over ``asyncio.open_connection`` instead — the wire
format is the same newline-delimited JSON documented in
:mod:`repro.service.server`.
"""

from __future__ import annotations

import json
import socket
import time

from repro.errors import ServiceError, SessionError
from repro.service.server import DEFAULT_PORT


class ServiceClient:
    """One TCP connection to a running inference server.

    Parameters
    ----------
    host / port:
        Server address (defaults match ``fastbni serve``'s defaults).
    timeout:
        Per-operation socket timeout in seconds (default 30); a stalled
        server surfaces as ``socket.timeout`` rather than a hang.
    connect_retry_s:
        Keep retrying the initial connect for this many seconds — handy
        when the server is being started in parallel (CI smoke jobs,
        benchmarks).  0 (default) fails immediately.

    Failure modes: :class:`~repro.errors.ServiceError` when the server is
    unreachable, closes the connection, or answers ``ok: false`` — in the
    last case ``error_type`` carries the server-side exception class name
    (``EvidenceError``, ``PlannerError``, ...) so callers can branch
    without string matching.  The client is synchronous and single
    in-flight; concurrency-hungry callers speak the JSON-lines protocol
    over ``asyncio.open_connection`` instead.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
                 timeout: float = 30.0, connect_retry_s: float = 0.0) -> None:
        self.host = host
        self.port = port
        self._next_id = 0
        deadline = time.monotonic() + connect_retry_s
        while True:
            try:
                self._sock = socket.create_connection((host, port),
                                                      timeout=timeout)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"cannot connect to inference server at {host}:{port}"
                    ) from None
                time.sleep(0.1)
        self._file = self._sock.makefile("rwb")

    # ----------------------------------------------------------------- wire
    def request(self, op: str, **fields) -> dict:
        """Send one request; return the full response envelope."""
        self._next_id += 1
        payload = {"id": self._next_id, "op": op}
        payload.update({k: v for k, v in fields.items() if v is not None})
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        response = json.loads(line)
        if response.get("id") != self._next_id:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match request "
                f"id {self._next_id} (pipelined requests need the async API)"
            )
        return response

    def call(self, op: str, **fields) -> dict:
        """Send one request; return ``result`` or raise :class:`ServiceError`."""
        response = self.request(op, **fields)
        if not response.get("ok"):
            error = response.get("error") or {}
            message = error.get("message", "unknown server error")
            if error.get("type") == "SessionError":
                # Re-raise with the machine-readable code so callers can
                # branch on eviction ("session_closed") vs typo
                # ("session_unknown") without string matching.
                raise SessionError(message,
                                   code=error.get("code", "session_closed"))
            raise ServiceError(message, error_type=error.get("type"))
        return response["result"]

    # ------------------------------------------------------------ operations
    def query(self, network: str, evidence: dict | None = None,
              targets=None, soft_evidence: dict | None = None,
              engine: str | None = None) -> dict:
        """One posterior query; ``engine`` = ``exact``/``approx``/``auto``.

        Responses served by the sampling engine additionally carry
        ``ess``, ``stderr``, ``num_samples`` (and ``r_hat`` for Gibbs).
        """
        return self.call("query", network=network, evidence=evidence,
                         targets=list(targets) if targets else None,
                         soft_evidence=soft_evidence, engine=engine)

    def query_batch(self, network: str, cases: list, targets=None,
                    engine: str | None = None) -> dict:
        return self.call("query_batch", network=network, cases=cases,
                         targets=list(targets) if targets else None,
                         engine=engine)

    def mpe(self, network: str, evidence: dict | None = None,
            engine: str | None = None) -> dict:
        return self.call("mpe", network=network, evidence=evidence,
                         engine=engine)

    def info(self, network: str, engine: str | None = None) -> dict:
        return self.call("info", network=network, engine=engine)

    def health(self) -> dict:
        return self.call("health")

    def stats(self) -> dict:
        return self.call("stats")

    def stats_reset(self) -> dict:
        """Zero the server's metrics counters (clean benchmark windows)."""
        return self.call("stats_reset")

    def cache_stats(self) -> dict:
        """Per-model incremental-cache counters plus serving totals.

        The response maps resident model keys to their
        :meth:`repro.service.cache.InferenceCache.stats` dict (states,
        memo entries, hit rates, bytes, mean delta size); ``served``
        carries the server-wide memo/delta serving counters.
        """
        return self.call("cache_stats")

    # --------------------------------------------------------- observability
    def metrics(self) -> str:
        """The server's metrics as Prometheus exposition text."""
        return self.call("metrics")["text"]

    def slow_queries(self) -> dict:
        """The bounded slow-query log (slowest first) plus its threshold."""
        return self.call("slow_queries")

    def trace_dump(self) -> dict:
        """Buffered sampled traces as a Chrome trace-event document.

        ``json.dump`` the return value to a file and open it in
        ``chrome://tracing`` or Perfetto (``fastbni trace out.json``
        does exactly that).
        """
        return self.call("trace_dump")

    # -------------------------------------------------------------- sessions
    def session_open(self, network: str, evidence: dict | None = None,
                     engine: str | None = None) -> dict:
        """Open a streaming session; the result carries its ``session`` id."""
        return self.call("session_open", network=network, evidence=evidence,
                         engine=engine)

    def session_update(self, session: str, evidence: dict | None = None,
                       retract=None, replace: bool = False,
                       targets=None) -> dict:
        """Apply one evidence edit; pass ``targets`` (a list, possibly
        empty = all variables) to read the fresh posteriors in the same
        round trip."""
        return self.call("session_update", session=session, evidence=evidence,
                         retract=list(retract) if retract else None,
                         replace=True if replace else None,
                         targets=list(targets) if targets is not None else None)

    def session_query(self, session: str, targets=None) -> dict:
        return self.call("session_query", session=session,
                         targets=list(targets) if targets else None)

    def session_close(self, session: str) -> dict:
        return self.call("session_close", session=session)

    def session(self, network: str, evidence: dict | None = None,
                engine: str | None = None) -> "Session":
        """Open a session wrapped in a context-manager facade::

            with client.session("asia", {"smoke": "yes"}) as sess:
                sess.update({"xray": "yes"})
                print(sess.query(["lung"])["posteriors"]["lung"])
        """
        return Session(self, self.session_open(network, evidence=evidence,
                                               engine=engine))

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Session:
    """Client-side facade over one server session (see
    :meth:`ServiceClient.session`).

    Thin by design: every method is one wire round trip on the owning
    client, and the server is the source of truth for the session's
    evidence and lifetime.  Exiting the context closes the session;
    a session the server already evicted (idle TTL, byte pressure)
    raises :class:`~repro.errors.SessionError` with code
    ``"session_closed"`` — on exit, that is swallowed (the goal, a dead
    session, is already achieved).
    """

    def __init__(self, client: ServiceClient, opened: dict) -> None:
        self._client = client
        self.id: str = opened["session"]
        self.network: str = opened["network"]

    def update(self, evidence: dict | None = None, retract=None,
               replace: bool = False, targets=None) -> dict:
        return self._client.session_update(self.id, evidence=evidence,
                                           retract=retract, replace=replace,
                                           targets=targets)

    def query(self, targets=None) -> dict:
        return self._client.session_query(self.id, targets=targets)

    def close(self) -> dict:
        return self._client.session_close(self.id)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> None:
        try:
            self.close()
        except SessionError:
            pass  # already closed or evicted server-side
