"""Two-tier inference cache: calibrated states + query-result memo.

Serving traffic is repetitive in two distinct ways, and each tier targets
one of them:

* **Tier 1 — calibrated-state LRU** (:class:`IncrementalEngine` instances
  keyed by canonicalized evidence).  Consecutive queries against one
  network often differ by a handful of findings; re-propagating a cached
  state through :mod:`repro.jt.incremental` touches only the dirty part
  of the junction tree instead of paying a full two-phase calibration.
* **Tier 2 — query-result memo** (finished
  :class:`~repro.jt.engine.InferenceResult` payloads keyed by
  ``(evidence, targets)``).  Exactly repeated queries — dashboards,
  retries, polling monitors — are answered without touching the tree at
  all.

One :class:`InferenceCache` serves one resident model (the registry hangs
it off the :class:`~repro.service.registry.ModelEntry`), so the "network"
component of the ISSUE's ``(network, evidence, targets)`` key is implicit.
Byte accounting (:meth:`InferenceCache.total_bytes`) is folded into the
registry's resident-set budget: a model whose cache grows is charged for
it and becomes a bigger eviction target.

Thread safety: all bookkeeping happens under one lock, while actual
propagation runs on states *popped* from the LRU (exclusively held by the
serving thread) and re-inserted afterwards — concurrent flushes never
share a mutating state.  Hard evidence only: soft likelihood vectors
cannot be expressed by the zeroing reduction, and the batcher routes them
to the per-case path before the cache is consulted.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import EvidenceError, ReproError
from repro.jt.engine import InferenceResult
from repro.jt.evidence import check_evidence
from repro.jt.incremental import IncrementalEngine
from repro.jt.structure import JunctionTree

#: Calibrated states kept per model: each holds ~2x the separator tables
#: plus rebuilt clique masks, so a handful covers real traffic without
#: rivaling the model's own residency.
DEFAULT_MAX_STATES = 8
#: Result-memo entries per model (posterior vectors are tiny).
DEFAULT_MAX_MEMO = 4096
#: Per-model cache byte budget (states + memo), charged against the
#: registry budget on top of the engine's own residency.
DEFAULT_MAX_BYTES = 32 * 1024 * 1024
#: Minimum evidence overlap (Jaccard over (variable, state) findings)
#: before the delta path is preferred over the cold vectorised batch.
DEFAULT_MIN_OVERLAP = 0.5

#: Canonical evidence key: sorted ``(variable, state_index)`` pairs.
EvidenceKey = tuple


@dataclass(frozen=True)
class CacheServed:
    """One request answered by the cache, with how and how hard it was.

    ``source`` is ``"memo"`` (tier 2) or ``"delta"`` (tier 1);
    ``delta_size`` counts the evidence edits applied (0 for memo hits) and
    feeds the mean-delta-size serving metric.
    """

    result: InferenceResult
    source: str
    delta_size: int = 0


def canonical_evidence(tree: JunctionTree,
                       evidence: dict[str, str | int] | None) -> EvidenceKey:
    """Sorted ``(name, state_index)`` pairs — one key per evidence *set*.

    State labels and integer indices canonicalize identically, so
    ``{"smoke": "yes"}`` and ``{"smoke": 0}`` share a cache line.  Raises
    :class:`~repro.errors.EvidenceError` on unknown variables/states.
    """
    ev = check_evidence(tree, dict(evidence or {}))
    return tuple(sorted(ev.items()))


def _overlap(a: EvidenceKey, b: EvidenceKey) -> tuple[float, float]:
    """``(variable overlap, finding overlap)`` between two keys, each in [0, 1].

    The *variable* overlap drives the delta-vs-cold policy: a changed
    observation dirties exactly one clique — the delta path's cheapest
    case — so ``{"smoke": yes}`` vs ``{"smoke": no}`` must score 1.0, not
    0.0.  The *finding* overlap (exact (variable, state) pairs) breaks
    ties so the least-edits base state wins among same-variable
    candidates.  Both are shared-count fractions of the larger set.
    """
    va = {name for name, _state in a}
    vb = {name for name, _state in b}
    larger = max(len(va), len(vb))
    if not larger:
        return 1.0, 1.0
    return len(va & vb) / larger, len(set(a) & set(b)) / larger


def _project(result: InferenceResult, want: tuple[str, ...]) -> InferenceResult:
    if not want or set(result.posteriors) == set(want):
        return result
    return InferenceResult(
        posteriors={n: result.posteriors[n] for n in want},
        log_evidence=result.log_evidence,
        meta=dict(result.meta),
    )


def _result_bytes(result: InferenceResult) -> int:
    return 96 + sum(v.nbytes + 48 for v in result.posteriors.values())


class InferenceCache:
    """Per-model two-tier cache (see the module docstring).

    Parameters
    ----------
    tree:
        The model's compiled junction tree (shared with its engine).
    base_cliques:
        The engine's cached CPT-product clique tables, so cached states
        share the compile-time product with the serving engine.
    max_states / max_memo / max_bytes:
        LRU capacities: calibrated states, memo entries, and the combined
        byte budget (bytes are an upper bound — cloned states share
        arrays).  Exceeding any bound evicts least-recently-used entries.
    min_overlap:
        Evidence-overlap threshold (Jaccard on findings, 0..1) below which
        :meth:`serve_cases` declines a case so the batcher's vectorised
        cold path handles it.  ``0.0`` forces every hard-evidence case
        onto the delta path.
    """

    def __init__(self, tree: JunctionTree,
                 base_cliques: list | None = None, *,
                 max_states: int = DEFAULT_MAX_STATES,
                 max_memo: int = DEFAULT_MAX_MEMO,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 min_overlap: float = DEFAULT_MIN_OVERLAP) -> None:
        if max_states < 1:
            raise EvidenceError(f"max_states must be >= 1, got {max_states}")
        self.tree = tree
        self.max_states = max_states
        self.max_memo = max_memo
        self.max_bytes = max_bytes
        self.min_overlap = min_overlap
        #: Never handed out, never updated: the clone source of last resort.
        self._baseline = IncrementalEngine(tree, base_cliques)
        self._states: "OrderedDict[EvidenceKey, IncrementalEngine]" = OrderedDict()
        self._memo: "OrderedDict[tuple, InferenceResult]" = OrderedDict()
        self._memo_bytes = 0
        self._lock = threading.Lock()
        self._counters = {
            "result_hits": 0, "result_misses": 0,
            "delta_served": 0, "declined": 0,
            "delta_size_sum": 0, "messages_recomputed": 0,
            "seeded": 0, "evicted_states": 0, "evicted_results": 0,
            "discarded_states": 0,
        }

    # ----------------------------------------------------------------- keys
    def evidence_key(self, evidence: dict | None) -> EvidenceKey:
        """Canonical key for ``evidence`` on this model's network."""
        return canonical_evidence(self.tree, evidence)

    @staticmethod
    def targets_key(targets: tuple[str, ...]) -> tuple[str, ...]:
        """Order-insensitive targets key (``()`` = all variables)."""
        return tuple(sorted(set(targets)))

    # ---------------------------------------------------------------- tier 2
    def lookup_result(self, evidence_key: EvidenceKey,
                      targets: tuple[str, ...]) -> InferenceResult | None:
        """Memo lookup; a full-posterior entry also answers subset queries."""
        tkey = self.targets_key(targets)
        with self._lock:
            hit = self._memo.get((evidence_key, tkey))
            if hit is None and tkey:
                full = self._memo.get((evidence_key, ()))
                if full is not None:
                    hit = _project(full, tkey)
                    self._memo.move_to_end((evidence_key, ()))
            elif hit is not None:
                self._memo.move_to_end((evidence_key, tkey))
            if hit is None:
                self._counters["result_misses"] += 1
                return None
            self._counters["result_hits"] += 1
            return hit

    def store_result(self, evidence_key: EvidenceKey,
                     targets: tuple[str, ...], result: InferenceResult) -> None:
        """Memoise a finished result (evicting LRU entries over budget)."""
        key = (evidence_key, self.targets_key(targets))
        with self._lock:
            old = self._memo.pop(key, None)
            if old is not None:
                self._memo_bytes -= _result_bytes(old)
            self._memo[key] = result
            self._memo_bytes += _result_bytes(result)
            self._evict_locked()

    # ---------------------------------------------------------------- tier 1
    def _best_key_locked(self, evidence_key: EvidenceKey
                         ) -> tuple[EvidenceKey | None, float]:
        """Best base-state key for ``evidence_key`` and its variable overlap.

        Ranked by (variable overlap, finding overlap, recency): among
        same-variable candidates the one needing the fewest edits wins,
        and ties go to the most recently used state (``>=`` while walking
        the LRU in insertion order).
        """
        best_key, best_score = None, (-1.0, -1.0)
        for key in self._states:
            score = _overlap(key, evidence_key)
            if score >= best_score:
                best_key, best_score = key, score
        return best_key, max(best_score[0], 0.0)

    def _pop_best_locked(self, evidence_key: EvidenceKey
                         ) -> tuple[IncrementalEngine | None, float]:
        best_key, score = self._best_key_locked(evidence_key)
        if best_key is None:
            return None, 0.0
        return self._states.pop(best_key), score

    def seed(self, evidence: dict | None) -> None:
        """Record ``evidence`` as a (lazy) base state for future deltas.

        Costs O(cliques) bookkeeping and **no propagation** — incremental
        states revalidate messages on first use — so the batcher seeds
        every cold-served case for free.
        """
        key = self.evidence_key(evidence)
        with self._lock:
            if key in self._states:
                self._states.move_to_end(key)
                return
            # States inside the LRU are quiescent (mutation only happens
            # while popped), so cloning under the lock is safe and O(cliques).
            best_key, _score = self._best_key_locked(key)
            source = (self._states[best_key] if best_key is not None
                      else self._baseline)
            seeded = source.clone()
        seeded.update(dict(key))  # key is pre-validated: cannot raise
        with self._lock:
            if key not in self._states:
                self._states[key] = seeded
                self._counters["seeded"] += 1
                self._evict_locked()

    def session_state(self, evidence: dict | None = None) -> IncrementalEngine:
        """An independent calibrated state seeded for a streaming session.

        Clones the cached base state with the best evidence overlap (or
        the pristine baseline) — O(cliques), no propagation — and records
        ``evidence`` on the clone, so a session opening near previously
        served traffic starts with most of its messages already valid.
        The clone is exclusively the caller's: it never re-enters the LRU
        and diverges freely from its source.
        """
        key = self.evidence_key(evidence)
        with self._lock:
            best_key, _score = self._best_key_locked(key)
            source = (self._states[best_key] if best_key is not None
                      else self._baseline)
            state = source.clone()
        state.update(dict(key))  # key is pre-validated: cannot raise
        return state

    def serve_cases(self, cases: list[tuple[dict, tuple[str, ...]]]
                    ) -> list["CacheServed | BaseException | None"]:
        """Answer what the cache can; ``None`` marks cases for the cold path.

        ``cases`` are ``(hard_evidence, targets)`` pairs (already
        validated by the batcher).  Cases are chained in canonical-key
        order so near-duplicates evolve one popped state through minimal
        deltas ("group by nearest cached base state").  A case whose
        evidence turns out impossible yields its
        :class:`~repro.errors.EvidenceError` in that slot — bystanders are
        unaffected, matching the vectorised path's poisoned-batch rule.
        """
        out: list[CacheServed | BaseException | None] = [None] * len(cases)
        plan: list[tuple[int, EvidenceKey, tuple[str, ...]]] = []
        for i, (evidence, targets) in enumerate(cases):
            try:
                key = self.evidence_key(evidence)
            except ReproError as exc:
                # Requests validate at submit time, but the entry can be
                # replaced (register()) between then and the flush; the
                # error must stay per-case, never fail the whole pre-pass.
                out[i] = exc
                continue
            hit = self.lookup_result(key, targets)
            if hit is not None:
                out[i] = CacheServed(_project(hit, self.targets_key(targets)),
                                     "memo")
            else:
                plan.append((i, key, self.targets_key(targets)))
        for i, key, tkey in sorted(plan, key=lambda item: item[1]):
            with self._lock:
                state, score = self._pop_best_locked(key)
                if state is None and self.min_overlap <= 0.0:
                    # min_overlap 0 means "always take the delta path":
                    # bootstrap from a baseline clone on an empty tier 1.
                    state, score = self._baseline.clone(), 0.0
            if state is None or score < self.min_overlap:
                if state is not None:
                    with self._lock:
                        self._states.setdefault(
                            self.evidence_key(state.evidence), state)
                with self._lock:
                    self._counters["declined"] += 1
                continue
            before = state.counters["up_recomputed"] + state.counters["down_recomputed"]
            try:
                result = state.infer(dict(key), tkey)
            except EvidenceError as exc:
                # Impossible evidence: drop the (possibly poisoned) state.
                out[i] = exc
                with self._lock:
                    self._counters["discarded_states"] += 1
                continue
            except ReproError as exc:
                # E.g. a target unknown after a register() swap: the state
                # itself is healthy, so keep it for the next case.
                out[i] = exc
                with self._lock:
                    self._states.setdefault(
                        self.evidence_key(state.evidence), state)
                continue
            messages = (state.counters["up_recomputed"]
                        + state.counters["down_recomputed"] - before)
            delta_size = int(result.meta.get("delta_size", 0))
            with self._lock:
                self._states[key] = state
                self._states.move_to_end(key)
                self._counters["delta_served"] += 1
                self._counters["delta_size_sum"] += delta_size
                self._counters["messages_recomputed"] += messages
                self._evict_locked()
            self.store_result(key, tkey, result)
            out[i] = CacheServed(result, "delta", delta_size)
        return out

    def record_cold(self, items: list[tuple[dict, tuple[str, ...], InferenceResult]]
                    ) -> None:
        """Absorb cases the vectorised cold path just served.

        Each ``(evidence, targets, result)`` triple is memoised (tier 2)
        and its evidence seeded as a lazy base state (tier 1), so the
        *next* near-duplicate takes the delta path.  Evidence that fails
        validation is skipped silently — the cold path already reported
        any real error to its caller.
        """
        for evidence, targets, result in items:
            try:
                key = self.evidence_key(evidence)
            except EvidenceError:
                continue
            self.store_result(key, targets, result)
            self.seed(dict(key))

    # ------------------------------------------------------------- lifecycle
    def total_bytes(self) -> int:
        """Upper-bound resident bytes (states + memo + baseline)."""
        with self._lock:
            return self._total_bytes_locked()

    def _total_bytes_locked(self) -> int:
        return (self._baseline.resident_bytes() + self._memo_bytes
                + sum(s.resident_bytes() for s in self._states.values()))

    def _evict_locked(self) -> None:
        while len(self._memo) > self.max_memo:
            _, old = self._memo.popitem(last=False)
            self._memo_bytes -= _result_bytes(old)
            self._counters["evicted_results"] += 1
        while (len(self._states) > self.max_states
               or (self._states
                   and self._total_bytes_locked() > self.max_bytes)):
            self._states.popitem(last=False)
            self._counters["evicted_states"] += 1
        while self._memo and self._total_bytes_locked() > self.max_bytes:
            _, old = self._memo.popitem(last=False)
            self._memo_bytes -= _result_bytes(old)
            self._counters["evicted_results"] += 1

    def clear(self) -> None:
        """Drop every cached state and memo entry (keeps counters)."""
        with self._lock:
            self._states.clear()
            self._memo.clear()
            self._memo_bytes = 0

    def stats(self) -> dict:
        """JSON-ready counters for the ``cache_stats`` endpoint."""
        with self._lock:
            lookups = (self._counters["result_hits"]
                       + self._counters["result_misses"])
            served = self._counters["delta_served"]
            return {
                "states": len(self._states),
                "memo_entries": len(self._memo),
                "bytes": self._total_bytes_locked(),
                "max_bytes": self.max_bytes,
                "min_overlap": self.min_overlap,
                "result_hits": self._counters["result_hits"],
                "result_misses": self._counters["result_misses"],
                "result_hit_rate": (self._counters["result_hits"] / lookups
                                    if lookups else 0.0),
                "delta_served": served,
                "declined": self._counters["declined"],
                "mean_delta_size": (self._counters["delta_size_sum"] / served
                                    if served else 0.0),
                "messages_recomputed": self._counters["messages_recomputed"],
                "seeded": self._counters["seeded"],
                "evicted_states": self._counters["evicted_states"],
                "evicted_results": self._counters["evicted_results"],
                "discarded_states": self._counters["discarded_states"],
            }
