"""Session-scoped serving: persistent per-session incremental state.

The micro-batcher and the two-tier cache exploit *accidental* overlap —
they win only when unrelated requests happen to repeat or nearly repeat
evidence.  The conversational-diagnosis shape (DoctorBN-style: a client
opens a case, findings arrive one at a time, posteriors are read after
each) guarantees that overlap structurally: consecutive requests differ
by exactly one edit.  This module serves that shape directly.

A **session** is one :class:`~repro.jt.incremental.IncrementalEngine`
seeded via ``clone()`` (O(cliques), no propagation) from its model
entry's cache-shared base state, so the session starts with most
messages already valid and every subsequent ``session_update`` is a
delta recalibration — never a cold calibration.  The
:class:`SessionManager` owns the session table:

* **byte accounting** — each session's resident bytes are charged to its
  :class:`~repro.service.registry.ModelEntry` (``session_bytes``), so
  sessions count against the registry's ``max_bytes`` exactly like cache
  tiers; the manager additionally bounds its own total (``max_bytes``)
  and count (``max_sessions``) with LRU eviction, plus an idle TTL;
* **explicit eviction errors** — operations on a closed or evicted id
  raise :class:`~repro.errors.SessionError` with ``code
  "session_closed"`` (``"session_unknown"`` for ids never issued), never
  a hang or a silent restart;
* **pin/lease integration** — every open session holds one registry pin
  on its model entry for its whole lifetime, so evicting (or shutting
  down) a model with live sessions *retires* the entry and the shared
  engine/plan close only after the last session ends;
* **ordering** — updates on one session are serialized (a per-session
  lock), while distinct sessions run concurrently on the manager's
  executor.

All methods are synchronous and thread-safe; the server calls them via
``run_in_executor`` on :attr:`SessionManager.executor`.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import EvidenceError, QueryError, ReproError, SessionError
from repro.jt.incremental import IncrementalEngine
from repro.service.metrics import ServiceMetrics
from repro.service.registry import ModelEntry, ModelRegistry

#: Live sessions per server; past this the least-recently-used is evicted.
DEFAULT_MAX_SESSIONS = 256
#: Idle seconds before a session is evicted by the TTL sweep.
DEFAULT_IDLE_TTL_S = 600.0
#: Total session byte budget (on top of per-entry registry accounting).
DEFAULT_MAX_BYTES = 64 * 1024 * 1024
#: Executor width: how many *distinct* sessions can propagate at once.
DEFAULT_WORKERS = 4

#: Closed/evicted ids remembered for explicit ``session_closed`` errors.
_TOMBSTONE_LIMIT = 4096

#: Fixed per-session overhead charged on top of the engine's arrays.
_SESSION_OVERHEAD_BYTES = 2048


@dataclass
class Session:
    """One live session: its engine, its model pin, and its bookkeeping."""

    id: str
    network: str
    entry: ModelEntry
    engine: IncrementalEngine
    created: float
    last_used: float
    #: Serializes updates/queries on this session; distinct sessions run
    #: concurrently on the manager's executor.
    lock: threading.Lock = field(default_factory=threading.Lock)
    updates: int = 0
    queries: int = 0
    #: Last byte estimate charged to the entry (engine arrays + overhead).
    bytes: int = 0
    #: Cleared on close/eviction so an in-flight operation that raced the
    #: eviction does not re-charge bytes for a session already settled.
    live: bool = True

    def resident_bytes(self) -> int:
        return self.engine.resident_bytes() + _SESSION_OVERHEAD_BYTES

    def describe(self) -> dict:
        return {
            "session": self.id,
            "network": self.network,
            "evidence_vars": len(self.engine.evidence),
            "updates": self.updates,
            "queries": self.queries,
            "bytes": self.bytes,
        }


class SessionManager:
    """The session table behind ``session_open``/``update``/``query``/``close``.

    Parameters
    ----------
    registry:
        The registry sessions pin their model entries in (and whose byte
        budget session bytes are folded into).
    max_sessions / idle_ttl_s / max_bytes:
        Table bounds: LRU count cap, idle eviction TTL, and the manager's
        own total byte budget.  Evicted ids answer with
        :class:`~repro.errors.SessionError` (``code "session_closed"``).
    workers:
        Width of :attr:`executor` — concurrent *distinct* sessions; one
        session's operations always serialize.
    clock:
        Injectable time source (tests drive TTL eviction explicitly).
    cold:
        Kill-switch for the warm delta path (the ablation harness's
        ``sessions_warm`` component): every open builds a fresh engine
        instead of cloning the cache-shared base state, and every
        update/query rebuilds the session's state from scratch so each
        read pays a full propagation.  Answers are identical; only the
        incremental reuse is disabled.
    """

    def __init__(self, registry: ModelRegistry, *,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 idle_ttl_s: float = DEFAULT_IDLE_TTL_S,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 metrics: ServiceMetrics | None = None,
                 workers: int = DEFAULT_WORKERS,
                 clock=time.monotonic,
                 cold: bool = False) -> None:
        if max_sessions < 1:
            raise QueryError(f"max_sessions must be >= 1, got {max_sessions}")
        self.registry = registry
        self.max_sessions = max_sessions
        self.idle_ttl_s = idle_ttl_s
        self.max_bytes = max_bytes
        self.metrics = metrics
        self.cold = cold
        self._clock = clock
        self._lock = threading.RLock()
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        #: id -> eviction reason, for explicit session_closed errors.
        self._tombstones: "OrderedDict[str, str]" = OrderedDict()
        self._closed = False
        #: Session operations run here (the server's ``run_in_executor``
        #: target): per-session locks serialize one session while
        #: distinct sessions propagate concurrently.
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="fastbni-session")

    # ----------------------------------------------------------------- table
    def _tombstone_locked(self, session_id: str, reason: str) -> None:
        self._tombstones[session_id] = reason
        while len(self._tombstones) > _TOMBSTONE_LIMIT:
            self._tombstones.popitem(last=False)

    def _checkout(self, session_id: str) -> Session:
        """Look up a live session, touching its LRU position and clock."""
        if not isinstance(session_id, str) or not session_id:
            raise QueryError("session operations require a 'session' id string")
        with self._lock:
            self._sweep_locked()
            session = self._sessions.get(session_id)
            if session is None:
                reason = self._tombstones.get(session_id)
                if reason is not None:
                    raise SessionError(
                        f"session {session_id!r} is closed ({reason})",
                        code="session_closed")
                raise SessionError(
                    f"unknown session id {session_id!r}",
                    code="session_unknown")
            self._sessions.move_to_end(session_id)
            session.last_used = self._clock()
            return session

    def _settle_locked(self, session: Session, reason: str) -> None:
        """Drop a session's byte charge and mark it dead (lock held)."""
        session.live = False
        session.entry.session_bytes -= session.bytes
        session.bytes = 0
        self._tombstone_locked(session.id, reason)

    def _evict_locked(self, session_id: str, reason: str) -> None:
        session = self._sessions.pop(session_id)
        self._settle_locked(session, reason)
        self.registry.unpin(session.entry)
        if self.metrics is not None:
            self.metrics.observe_session_event("evicted")

    def _sweep_locked(self) -> None:
        """Evict idle-TTL-expired sessions (cheap: table is small)."""
        if self.idle_ttl_s <= 0:
            return
        cutoff = self._clock() - self.idle_ttl_s
        for sid in [sid for sid, s in self._sessions.items()
                    if s.last_used < cutoff]:
            self._evict_locked(sid, "idle TTL exceeded")

    def _enforce_locked(self, keep: str) -> None:
        """LRU-evict over the count/byte caps, sparing ``keep`` (the
        session just touched — mirroring the registry's never-evict-MRU
        rule, one over-budget session stays servable)."""
        while len(self._sessions) > self.max_sessions:
            sid = next(iter(self._sessions))
            if sid == keep:
                break
            self._evict_locked(sid, "session table full (LRU)")
        while (len(self._sessions) > 1
               and sum(s.bytes for s in self._sessions.values())
               > self.max_bytes):
            sid = next(iter(self._sessions))
            if sid == keep:
                break
            self._evict_locked(sid, "session byte budget exceeded")

    def _account(self, session: Session) -> None:
        """Re-charge a session's bytes after engine work, then re-check
        both the manager's and the registry's budgets."""
        with self._lock:
            if session.live:
                fresh = session.resident_bytes()
                session.entry.session_bytes += fresh - session.bytes
                session.bytes = fresh
                self._enforce_locked(keep=session.id)
        self.registry.enforce_budget()

    @staticmethod
    def _cold_engine(entry: ModelEntry, evidence: dict | None):
        """A from-scratch session state: no cache base, no valid messages."""
        return IncrementalEngine(
            entry.engine.tree,
            getattr(entry.engine, "_batch_base_cliques", None),
            evidence=dict(evidence or {}))

    @staticmethod
    def _recomputed(engine) -> int:
        """Messages revalidated so far (the delta path's work counter)."""
        counters = getattr(engine, "counters", None)
        if not counters:
            return 0
        return (counters.get("up_recomputed", 0)
                + counters.get("down_recomputed", 0))

    # ------------------------------------------------------------ operations
    def open(self, network: str, evidence: dict | None = None,
             engine: str | None = None, trace=None) -> dict:
        """Open a session on ``network`` (optionally with initial evidence).

        The per-session state clones from the model's cache-shared base
        state (best evidence overlap wins), so opening costs O(cliques)
        and no propagation.  Models routed to a sampling engine are
        rejected — sessions are delta recalibration, which needs the
        junction tree (pass ``engine="exact"`` to force a compile).
        ``trace`` (a sampled request's :class:`~repro.obs.TraceContext`)
        gets a ``session_open`` span covering the clone.
        """
        span = (trace.start_span("session_open", network=network)
                if trace is not None else None)
        with self._lock:
            if self._closed:
                raise SessionError("session manager is shut down",
                                   code="session_closed")
        entry = self.registry.get_pinned(network, engine=engine)
        try:
            if not entry.capabilities.exact:
                raise QueryError(
                    f"sessions need an exact junction-tree engine but "
                    f"{network!r} is served by {entry.engine_kind!r} "
                    "(send engine='exact' to force an exact compile)")
            if entry.cache is not None and not self.cold:
                state = entry.cache.session_state(evidence)
            else:
                state = self._cold_engine(entry, evidence)
        except ReproError:
            self.registry.unpin(entry)
            raise
        now = self._clock()
        session = Session(id=secrets.token_hex(8), network=network,
                          entry=entry, engine=state, created=now,
                          last_used=now)
        session.bytes = session.resident_bytes()
        with self._lock:
            if self._closed:
                self.registry.unpin(entry)
                raise SessionError("session manager is shut down",
                                   code="session_closed")
            self._sweep_locked()
            self._sessions[session.id] = session
            entry.session_bytes += session.bytes
            self._enforce_locked(keep=session.id)
        self.registry.enforce_budget()
        if self.metrics is not None:
            self.metrics.observe_session_event("opened")
        if span is not None:
            trace.end_span(span, evidence_vars=len(state.evidence),
                           session_bytes=session.bytes)
        return session.describe()

    def update(self, session_id: str, evidence: dict | None = None,
               retract=(), replace: bool = False,
               targets: tuple[str, ...] | None = None, trace=None) -> dict:
        """Apply one evidence edit to a session (the streaming hot path).

        By default ``evidence`` *merges* into the session's current
        findings and ``retract`` names variables to withdraw — the
        one-finding-at-a-time conversational shape.  ``replace=True``
        swaps the full evidence set instead.  When ``targets`` is given
        the fresh posteriors (and ``log P(e)``) come back in the same
        round trip.  Unknown variables/states raise
        :class:`~repro.errors.EvidenceError` before any state changes.
        """
        session = self._checkout(session_id)
        with session.lock:
            engine = session.engine
            span = (trace.start_span("session_update")
                    if trace is not None else None)
            recomputed_before = self._recomputed(engine)
            if replace:
                new_evidence = dict(evidence or {})
            else:
                new_evidence = dict(engine.evidence)
                for name in tuple(retract or ()):
                    if name not in engine.tree.net:
                        raise EvidenceError(
                            f"cannot retract unknown variable {name!r}")
                    new_evidence.pop(name, None)
                new_evidence.update(evidence or {})
            if self.cold:
                # Kill-switch: discard the calibrated state so this edit
                # (and any posterior read below) pays a full propagation.
                engine = session.engine = self._cold_engine(
                    session.entry, None)
            delta = engine.update(new_evidence)
            session.updates += 1
            payload = {
                "session": session.id,
                "delta": {
                    "added": list(delta.added),
                    "retracted": list(delta.retracted),
                    "changed": list(delta.changed),
                    "size": delta.size,
                    "dirty_cliques": len(delta.dirty_cliques),
                },
                "evidence_vars": len(engine.evidence),
            }
            if targets is not None:
                payload["posteriors"] = engine.posteriors(tuple(targets))
                payload["log_evidence"] = engine.log_evidence()
                session.queries += 1
            if span is not None:
                trace.end_span(
                    span, delta_size=delta.size,
                    dirty_cliques=len(delta.dirty_cliques),
                    revalidated_messages=(self._recomputed(engine)
                                          - recomputed_before),
                    evidence_vars=len(engine.evidence))
        if self.metrics is not None:
            self.metrics.observe_session_update(delta.size)
            if targets is not None:
                self.metrics.observe_session_query()
        self._account(session)
        return payload

    def query(self, session_id: str,
              targets: tuple[str, ...] = (), trace=None) -> dict:
        """Read posteriors + ``log P(e)`` from a session's current state.

        Revalidates only the messages the targets need (lazy delta
        propagation); impossible evidence raises
        :class:`~repro.errors.EvidenceError` and the session stays usable
        — the next feasible update recomputes what it invalidated.
        """
        session = self._checkout(session_id)
        with session.lock:
            engine = session.engine
            if self.cold:
                engine = session.engine = self._cold_engine(
                    session.entry, dict(engine.evidence))
            span = (trace.start_span("session_query")
                    if trace is not None else None)
            recomputed_before = self._recomputed(engine)
            payload = {
                "session": session.id,
                "posteriors": engine.posteriors(tuple(targets)),
                "log_evidence": engine.log_evidence(),
                "evidence_vars": len(engine.evidence),
                "served_by": "session",
            }
            session.queries += 1
            if span is not None:
                trace.end_span(
                    span,
                    revalidated_messages=(self._recomputed(engine)
                                          - recomputed_before),
                    evidence_vars=len(engine.evidence))
        if self.metrics is not None:
            self.metrics.observe_session_query()
        self._account(session)
        return payload

    def close(self, session_id: str) -> dict:
        """Close a session, releasing its bytes and its model pin.

        Closing an already-closed/evicted id raises the same explicit
        :class:`~repro.errors.SessionError` other operations see.
        """
        session = self._checkout(session_id)
        with self._lock:
            # Re-check under the lock: _checkout released it, and a
            # concurrent close/eviction may have won the race.
            if self._sessions.get(session_id) is not session:
                raise SessionError(
                    f"session {session_id!r} is closed "
                    f"({self._tombstones.get(session_id, 'closed')})",
                    code="session_closed")
            del self._sessions[session_id]
            self._settle_locked(session, "closed by client")
        self.registry.unpin(session.entry)
        if self.metrics is not None:
            self.metrics.observe_session_event("closed")
        summary = session.describe()
        summary["closed"] = True
        return summary

    # ------------------------------------------------------------- lifecycle
    def sweep(self) -> int:
        """Evict idle-TTL-expired sessions; returns how many went."""
        with self._lock:
            before = len(self._sessions)
            self._sweep_locked()
            return before - len(self._sessions)

    def total_bytes(self) -> int:
        """Bytes currently charged for live sessions (all models)."""
        with self._lock:
            return sum(s.bytes for s in self._sessions.values())

    def stats(self) -> dict:
        """JSON-ready table snapshot for the ``stats`` endpoint."""
        with self._lock:
            return {
                "open": len(self._sessions),
                "max_sessions": self.max_sessions,
                "idle_ttl_s": self.idle_ttl_s,
                "bytes": sum(s.bytes for s in self._sessions.values()),
                "max_bytes": self.max_bytes,
                "by_network": {
                    sid: s.describe() for sid, s in self._sessions.items()
                },
            }

    def close_all(self) -> None:
        """Shut down: evict every session and stop the executor."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for sid in list(self._sessions):
                session = self._sessions.pop(sid)
                self._settle_locked(session, "server shutdown")
                self.registry.unpin(session.entry)
        self.executor.shutdown(wait=True)

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close_all()
