"""Dynamic micro-batching: coalesce concurrent single-case queries.

The paper's contribution — amortising one compiled junction tree across
many evidence cases — is worth the most when *independent* requests are
coalesced server-side: ``BatchedFastBNI`` calibrates N cases in one pass
of the layer schedule for far less than N single passes, but only if a
batch exists.  This module manufactures those batches from single-case
traffic.

Per network, incoming queries queue until either ``max_batch`` cases are
waiting or the oldest has waited ``max_wait_ms`` — the classic dynamic
batching policy (latency bound under light load, full batches under
heavy load).  Each flush runs one vectorised ``infer_cases`` call on an
executor thread and fans the per-case results back out to the awaiting
futures.

Queues are keyed by ``(network, engine kind)``: approximate and exact
queries for the same network never mix, and a flush against an
:class:`~repro.approx.ApproxBNI` entry runs **one shared particle
population** across all coalesced cases (common random numbers, one
topological sampling pass) — the sampling analog of the exact engine's
batched calibration.

Two request classes bypass or degrade the vectorised path deliberately:

* **soft evidence** cannot be expressed by the exact batched reduction, so
  those requests run the per-case engine directly (still off the event
  loop) — the approx engine weights likelihood vectors natively, so there
  soft evidence coalesces like any other case;
* an **impossible-evidence case poisons a whole vectorised flush** (the
  batched kernels raise on the first empty message; the sampler raises on
  an all-zero-weight case), so a failed flush is retried case-by-case —
  only the offending request gets the error, the coalesced bystanders
  still succeed.

Requests are validated *at submit time* (unknown variables/states, bad
likelihood vectors) so a malformed request is rejected immediately and can
never take down a batch it would have joined.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.approx.engine import ApproxInferenceResult
from repro.errors import EvidenceError, QueryError
from repro.jt.engine import InferenceResult
from repro.obs.trace import (ScheduleRecorder, Span, TraceContext,
                             install_kernel_hooks)
from repro.service.metrics import ServiceMetrics
from repro.service.registry import ModelEntry, ModelRegistry

#: Default flush policy: small enough to keep tail latency in single-digit
#: milliseconds on bundled networks, large enough to fill under load.
DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_WAIT_MS = 2.0


@dataclass(frozen=True)
class QueryRequest:
    """One single-case posterior query."""

    evidence: dict = field(default_factory=dict)
    targets: tuple[str, ...] = ()
    soft_evidence: dict | None = None
    #: Engine routing override: ``"exact"``, ``"approx"``, ``"auto"`` or
    #: ``None`` (= the registry's default policy).
    engine: str | None = None
    #: Span recorder for a sampled request (:mod:`repro.obs`); ``None``
    #: on the unsampled hot path.  Excluded from equality/repr — two
    #: requests asking the same question are the same query.
    trace: TraceContext | None = field(default=None, compare=False,
                                       repr=False)


class _Pending:
    __slots__ = ("request", "future", "enqueued", "queue_span")

    def __init__(self, request: QueryRequest, future: asyncio.Future) -> None:
        self.request = request
        self.future = future
        self.enqueued = time.monotonic()
        #: Open ``queue_wait`` span for a traced request (ended when the
        #: flush picks the batch up).
        self.queue_span: Span | None = None


def _project(result: InferenceResult, want: tuple[str, ...]) -> InferenceResult:
    """Narrow a result computed for a superset of targets down to ``want``.

    Preserves the result's class — an approx result keeps its per-target
    ``stderr`` (narrowed alongside), ``ess`` and diagnostics.
    """
    if not want or set(result.posteriors) == set(want):
        return result
    narrowed = {name: result.posteriors[name] for name in want}
    if isinstance(result, ApproxInferenceResult):
        return replace(result, posteriors=narrowed,
                       stderr={name: result.stderr[name] for name in want
                               if name in result.stderr})
    return InferenceResult(
        posteriors=narrowed,
        log_evidence=result.log_evidence,
        meta=result.meta,
    )


class MicroBatcher:
    """Queue + flush scheduler in front of a :class:`ModelRegistry`.

    All public methods must be called from one asyncio event loop; the
    actual calibration runs on a private executor so the loop stays
    responsive while NumPy works.
    """

    def __init__(self, registry: ModelRegistry, *,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
                 metrics: ServiceMetrics | None = None,
                 flush_workers: int = 1) -> None:
        if max_batch < 1:
            raise EvidenceError(f"max_batch must be >= 1, got {max_batch}")
        self.registry = registry
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        #: Queues keyed by (network, engine kind): exact and approx
        #: traffic for one network coalesce separately.
        self._queues: dict[tuple[str, str], list[_Pending]] = {}
        self._timers: dict[tuple[str, str], asyncio.TimerHandle] = {}
        self._inflight: set[asyncio.Task] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=flush_workers, thread_name_prefix="fastbni-flush")
        self._closed = False

    async def run_blocking(self, fn):
        """Run CPU-bound ``fn`` on the batcher's executor (shared with flushes)."""
        return await asyncio.get_running_loop().run_in_executor(self._executor, fn)

    async def get_entry(self, network: str,
                        engine: str | None = None) -> ModelEntry:
        """Registry lookup off the event loop.

        A resident hit is a dict lookup, but a cold miss compiles a
        junction tree (seconds on large analogs) — that must never run on
        the loop or every connection stalls behind it.
        """
        return await self.run_blocking(
            lambda: self.registry.get(network, engine=engine))

    async def get_entry_pinned(self, network: str,
                               engine: str | None = None) -> ModelEntry:
        """Atomic lookup + pin off the event loop (no eviction window).

        ``registry.get`` followed by ``registry.pin`` leaves a gap in
        which a concurrent cold load can LRU-evict the entry and close
        its engine before the pin lands; any serving path that holds an
        entry across an ``await`` must take the pin atomically here and
        release it with ``registry.unpin`` when done.
        """
        return await self.run_blocking(
            lambda: self.registry.get_pinned(network, engine=engine))

    def _validate(self, entry: ModelEntry, request: QueryRequest) -> None:
        # The engine knows how to validate its own requests (the
        # InferenceEngine protocol); the batcher only checks targets.
        entry.engine.validate_case(request.evidence, request.soft_evidence)
        for name in request.targets:
            if name not in entry.net:
                raise QueryError(f"unknown target variable {name!r}")

    def _observe_served(self, kind: str, result) -> None:
        ess = result.ess if isinstance(result, ApproxInferenceResult) else None
        self.metrics.observe_engine(kind, ess=ess)

    # ---------------------------------------------------------------- submit
    async def submit(self, network: str, request: QueryRequest) -> InferenceResult:
        """Answer one query, transparently coalescing it with its neighbours.

        Raises the underlying :class:`~repro.errors.ReproError` subclass on
        invalid networks/evidence — validation happens here, before the
        request can join (and poison) a batch.
        """
        if self._closed:
            raise EvidenceError("micro-batcher is closed")
        lookup_start = time.perf_counter()
        entry = await self.get_entry(network, request.engine)
        lookup_end = time.perf_counter()
        caps = entry.capabilities
        kind = caps.kind
        self.metrics.observe_stage("registry_lookup",
                                   lookup_end - lookup_start)
        if request.trace is not None:
            request.trace.record("registry_lookup", lookup_start, lookup_end,
                                 engine=kind,
                                 compiled_from_cache=entry.from_cache)
        self._validate(entry, request)
        if request.soft_evidence and not caps.batched_soft_evidence:
            # This engine class cannot take likelihood vectors through its
            # vectorised flush (the exact batched reduction cannot express
            # them; samplers weight them natively), so the request takes
            # the per-case detour.  Re-resolve with an atomic pin — the
            # validation above ran unpinned, and ``entry`` may have been
            # evicted in the meantime (a resident re-hit is a dict lookup).
            entry = await self.get_entry_pinned(network, request.engine)
            try:
                result = await self._run_single(entry, request)
                self._observe_served(kind, result)
                return result
            finally:
                self.registry.unpin(entry)
        if not request.evidence and not request.soft_evidence:
            # Prior query: answered from the resident sampled prior with
            # its error bars when the engine recorded one, else from the
            # resident calibrated baseline.
            if self.metrics is not None:
                self.metrics.observe_baseline_hit()
            if entry.prior_result is not None:
                prior_result = entry.prior_result
            else:
                prior_result = InferenceResult(
                    posteriors=dict(entry.prior), log_evidence=0.0)
            self._observe_served(kind, prior_result)
            return _project(prior_result, request.targets)

        loop = asyncio.get_running_loop()
        pending = _Pending(request, loop.create_future())
        if request.trace is not None:
            pending.queue_span = request.trace.start_span("queue_wait")
        key = (network, kind)
        queue = self._queues.setdefault(key, [])
        queue.append(pending)
        if len(queue) >= self.max_batch:
            self._flush(key)
        elif len(queue) == 1:
            self._timers[key] = loop.call_later(
                self.max_wait_ms / 1e3, self._flush, key)
        return await pending.future

    # ---------------------------------------------------------------- flush
    def _flush(self, key: tuple[str, str]) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        batch = self._queues.pop(key, [])
        if not batch:
            return
        task = asyncio.get_running_loop().create_task(
            self._run_batch(key, batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    @staticmethod
    def _union_targets(batch: list[_Pending]) -> tuple[str, ...]:
        """Targets covering every request; () (= all variables) if any wants all."""
        union: list[str] = []
        seen: set[str] = set()
        for pending in batch:
            if not pending.request.targets:
                return ()
            for name in pending.request.targets:
                if name not in seen:
                    seen.add(name)
                    union.append(name)
        return tuple(union)

    async def _run_batch(self, key: tuple[str, str],
                         batch: list[_Pending]) -> None:
        network, kind = key
        entry = await self.get_entry_pinned(network, kind)
        # Queue wait ends once the flush holds its pinned entry and is
        # about to do real work; the pinned re-lookup is part of the wait.
        picked_up = time.monotonic()
        fill = len(batch)
        for pending in batch:
            self.metrics.observe_stage(
                "queue_wait", max(picked_up - pending.enqueued, 0.0))
            if pending.queue_span is not None:
                pending.request.trace.end_span(pending.queue_span, fill=fill)
        try:
            engine = entry.engine
            caps = entry.capabilities
            if entry.cache is not None:
                # Any failure here must fan out to the futures like the
                # vectorised path's does — a dead flush task would leave
                # every coalesced client waiting forever.
                try:
                    batch = await self._serve_from_cache(entry, batch)
                except BaseException as exc:  # noqa: BLE001
                    for pending in batch:
                        if not pending.future.done():
                            pending.future.set_exception(exc)
                    return
                if not batch:
                    return
            cases = [pending.request.evidence for pending in batch]
            targets = self._union_targets(batch)
            loop = asyncio.get_running_loop()
            if caps.batched_soft_evidence:
                # Soft evidence joins the flush (the sampler shares one
                # particle population across every coalesced case —
                # common random numbers, one pass over the topology).
                soft = [pending.request.soft_evidence for pending in batch]
                work = lambda: engine.infer_cases(  # noqa: E731
                    cases, targets=targets, soft_cases=soft)
            else:
                work = lambda: engine.infer_cases(  # noqa: E731
                    cases, targets=targets)
            # A sampled request in the batch turns on the kernel hooks:
            # run_message_schedule / the batched calibration report
            # per-message and per-absorption timings through a
            # thread-local (contextvars do not cross run_in_executor),
            # installed around the executor work only.
            recorder = None
            if any(p.request.trace is not None for p in batch):
                recorder = ScheduleRecorder()
                inner_work = work

                def work(rec=recorder, run=inner_work):  # noqa: F811
                    with install_kernel_hooks(rec):
                        return run()

            exec_start = time.perf_counter()
            try:
                result = await loop.run_in_executor(self._executor, work)
            except EvidenceError:
                # An impossible case empties a message (exact) or kills
                # every particle weight (approx) and aborts the whole
                # vectorised pass; re-run case-by-case so only that request
                # fails.
                await self._run_individually(entry, batch)
                return
            except BaseException as exc:  # noqa: BLE001 - fan the failure out
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
                return
            exec_end = time.perf_counter()
            self.metrics.observe_stage("execute", exec_end - exec_start)
            self.metrics.observe_batch(len(batch))
            cold_items = []
            for i, pending in enumerate(batch):
                case_result = result.case(i)
                self._observe_served(kind, case_result)
                trace = pending.request.trace
                if trace is not None:
                    # Recorded before the future resolves: once the
                    # client coroutine resumes it serializes and finishes
                    # the trace, and a late span would miss the buffer.
                    attrs = {"fill": len(batch), "engine": kind}
                    if recorder is not None:
                        attrs.update(recorder.summary())
                    if isinstance(case_result, ApproxInferenceResult):
                        attrs["ess"] = case_result.ess
                        attrs["num_samples"] = case_result.num_samples
                    trace.record("execute", exec_start, exec_end, **attrs)
                projected = _project(case_result, pending.request.targets)
                if entry.cache is not None:
                    cold_items.append((pending.request.evidence,
                                       pending.request.targets, projected))
                if not pending.future.done():
                    pending.future.set_result(projected)
            if cold_items:
                # Memoise + seed lazy base states so the next
                # near-duplicate of any of these cases takes the delta
                # path.  Best-effort: every future above is already
                # resolved, so a seeding failure must not kill the task.
                try:
                    await loop.run_in_executor(
                        self._executor,
                        lambda: entry.cache.record_cold(cold_items))
                except Exception:  # noqa: BLE001 - cache warming only
                    pass
        finally:
            self.registry.unpin(entry)

    async def _serve_from_cache(self, entry: ModelEntry,
                                batch: list[_Pending]) -> list[_Pending]:
        """Tier-1/tier-2 pre-pass; returns the cases left for the cold path.

        Runs :meth:`~repro.service.cache.InferenceCache.serve_cases` on
        the executor (delta propagation is NumPy work), resolves every
        answered future with ``served_by`` ``"cache"`` (memo) or
        ``"delta"`` (incremental recalibration), and hands back the
        declined remainder so the vectorised flush only calibrates
        genuinely novel evidence.
        """
        requests = [(p.request.evidence, p.request.targets) for p in batch]
        loop = asyncio.get_running_loop()
        lookup_start = time.perf_counter()
        outcomes = await loop.run_in_executor(
            self._executor, lambda: entry.cache.serve_cases(requests))
        lookup_end = time.perf_counter()
        self.metrics.observe_stage("cache_lookup", lookup_end - lookup_start)
        remaining: list[_Pending] = []
        for pending, outcome in zip(batch, outcomes):
            trace = pending.request.trace
            if trace is not None:
                served = (None if outcome is None
                          or isinstance(outcome, BaseException)
                          else outcome.source)
                trace.record(
                    "cache_lookup", lookup_start, lookup_end,
                    fill=len(batch), served=served,
                    **({"delta_size": outcome.delta_size}
                       if served == "delta" else {}))
            if outcome is None:
                remaining.append(pending)
                continue
            if isinstance(outcome, BaseException):
                if not pending.future.done():
                    pending.future.set_exception(outcome)
                continue
            self.metrics.observe_cache_serve(outcome.source, outcome.delta_size)
            served_by = "cache" if outcome.source == "memo" else "delta"
            result = InferenceResult(
                posteriors=dict(outcome.result.posteriors),
                log_evidence=outcome.result.log_evidence,
                meta={**outcome.result.meta, "served_by": served_by},
            )
            result = _project(result, pending.request.targets)
            self._observe_served("exact", result)
            if not pending.future.done():
                pending.future.set_result(result)
        return remaining

    async def _run_individually(self, entry: ModelEntry,
                                batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        self.metrics.observe_fallback(len(batch))
        for pending in batch:
            request = pending.request
            try:
                result = await loop.run_in_executor(
                    self._executor,
                    lambda req=request: entry.engine.infer(
                        req.evidence, req.targets,
                        soft_evidence=req.soft_evidence))
            # BaseException, not ReproError: an unexpected failure
            # (MemoryError, a shutdown executor, cancellation) must still
            # resolve this future, or its client waits forever.
            except BaseException as exc:  # noqa: BLE001
                if not pending.future.done():
                    pending.future.set_exception(exc)
            else:
                self._observe_served(entry.engine_kind, result)
                if not pending.future.done():
                    pending.future.set_result(result)

    async def _run_single(self, entry: ModelEntry,
                          request: QueryRequest) -> InferenceResult:
        """Per-case path for requests the vectorised kernels cannot express."""
        self.metrics.observe_fallback()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor,
            lambda: entry.engine.infer(request.evidence, request.targets,
                                       soft_evidence=request.soft_evidence))

    # ------------------------------------------------------------- lifecycle
    async def drain(self) -> None:
        """Flush every queue and wait for all in-flight batches to finish."""
        for network in list(self._queues):
            self._flush(network)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        await self.drain()
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._executor.shutdown(wait=True)
