"""Dynamic micro-batching: coalesce concurrent single-case queries.

The paper's contribution — amortising one compiled junction tree across
many evidence cases — is worth the most when *independent* requests are
coalesced server-side: ``BatchedFastBNI`` calibrates N cases in one pass
of the layer schedule for far less than N single passes, but only if a
batch exists.  This module manufactures those batches from single-case
traffic.

Per network, incoming queries queue until either ``max_batch`` cases are
waiting or the oldest has waited ``max_wait_ms`` — the classic dynamic
batching policy (latency bound under light load, full batches under
heavy load).  Each flush runs one vectorised ``infer_cases`` call on an
executor thread and fans the per-case results back out to the awaiting
futures.

Two request classes bypass or degrade the vectorised path deliberately:

* **soft evidence** cannot be expressed by the batched reduction, so those
  requests run the per-case engine directly (still off the event loop);
* an **impossible-evidence case poisons a whole vectorised flush** (the
  batched kernels raise on the first empty message), so a failed flush is
  retried case-by-case — only the offending request gets the error, the
  coalesced bystanders still succeed.

Requests are validated *at submit time* (unknown variables/states, bad
likelihood vectors) so a malformed request is rejected immediately and can
never take down a batch it would have joined.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import EvidenceError, QueryError
from repro.jt.engine import InferenceResult
from repro.jt.evidence import check_evidence
from repro.jt.evidence_soft import check_soft_evidence
from repro.service.metrics import ServiceMetrics
from repro.service.registry import ModelEntry, ModelRegistry

#: Default flush policy: small enough to keep tail latency in single-digit
#: milliseconds on bundled networks, large enough to fill under load.
DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_WAIT_MS = 2.0


@dataclass(frozen=True)
class QueryRequest:
    """One single-case posterior query."""

    evidence: dict = field(default_factory=dict)
    targets: tuple[str, ...] = ()
    soft_evidence: dict | None = None


class _Pending:
    __slots__ = ("request", "future", "enqueued")

    def __init__(self, request: QueryRequest, future: asyncio.Future) -> None:
        self.request = request
        self.future = future
        self.enqueued = time.monotonic()


def _project(result: InferenceResult, want: tuple[str, ...]) -> InferenceResult:
    """Narrow a result computed for a superset of targets down to ``want``."""
    if not want or set(result.posteriors) == set(want):
        return result
    return InferenceResult(
        posteriors={name: result.posteriors[name] for name in want},
        log_evidence=result.log_evidence,
        meta=result.meta,
    )


class MicroBatcher:
    """Queue + flush scheduler in front of a :class:`ModelRegistry`.

    All public methods must be called from one asyncio event loop; the
    actual calibration runs on a private executor so the loop stays
    responsive while NumPy works.
    """

    def __init__(self, registry: ModelRegistry, *,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
                 metrics: ServiceMetrics | None = None,
                 flush_workers: int = 1) -> None:
        if max_batch < 1:
            raise EvidenceError(f"max_batch must be >= 1, got {max_batch}")
        self.registry = registry
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._queues: dict[str, list[_Pending]] = {}
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._inflight: set[asyncio.Task] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=flush_workers, thread_name_prefix="fastbni-flush")
        self._closed = False

    async def run_blocking(self, fn):
        """Run CPU-bound ``fn`` on the batcher's executor (shared with flushes)."""
        return await asyncio.get_running_loop().run_in_executor(self._executor, fn)

    async def get_entry(self, network: str) -> ModelEntry:
        """Registry lookup off the event loop.

        A resident hit is a dict lookup, but a cold miss compiles a
        junction tree (seconds on large analogs) — that must never run on
        the loop or every connection stalls behind it.
        """
        return await self.run_blocking(lambda: self.registry.get(network))

    # ---------------------------------------------------------------- submit
    async def submit(self, network: str, request: QueryRequest) -> InferenceResult:
        """Answer one query, transparently coalescing it with its neighbours.

        Raises the underlying :class:`~repro.errors.ReproError` subclass on
        invalid networks/evidence — validation happens here, before the
        request can join (and poison) a batch.
        """
        if self._closed:
            raise EvidenceError("micro-batcher is closed")
        entry = await self.get_entry(network)
        tree = entry.engine.tree
        check_evidence(tree, request.evidence)
        for name in request.targets:
            if name not in tree.net:
                raise QueryError(f"unknown target variable {name!r}")
        if request.soft_evidence:
            check_soft_evidence(tree, request.soft_evidence)
            self.registry.pin(entry)
            try:
                return await self._run_single(entry, request)
            finally:
                self.registry.unpin(entry)
        if not request.evidence:
            # Prior query: answered from the resident calibrated baseline.
            if self.metrics is not None:
                self.metrics.observe_baseline_hit()
            return _project(
                InferenceResult(posteriors=dict(entry.prior), log_evidence=0.0),
                request.targets,
            )

        loop = asyncio.get_running_loop()
        pending = _Pending(request, loop.create_future())
        queue = self._queues.setdefault(network, [])
        queue.append(pending)
        if len(queue) >= self.max_batch:
            self._flush(network)
        elif len(queue) == 1:
            self._timers[network] = loop.call_later(
                self.max_wait_ms / 1e3, self._flush, network)
        return await pending.future

    # ---------------------------------------------------------------- flush
    def _flush(self, network: str) -> None:
        timer = self._timers.pop(network, None)
        if timer is not None:
            timer.cancel()
        batch = self._queues.pop(network, [])
        if not batch:
            return
        task = asyncio.get_running_loop().create_task(
            self._run_batch(network, batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    @staticmethod
    def _union_targets(batch: list[_Pending]) -> tuple[str, ...]:
        """Targets covering every request; () (= all variables) if any wants all."""
        union: list[str] = []
        seen: set[str] = set()
        for pending in batch:
            if not pending.request.targets:
                return ()
            for name in pending.request.targets:
                if name not in seen:
                    seen.add(name)
                    union.append(name)
        return tuple(union)

    async def _run_batch(self, network: str, batch: list[_Pending]) -> None:
        entry = self.registry.pin(await self.get_entry(network))
        try:
            engine = entry.engine
            cases = [pending.request.evidence for pending in batch]
            targets = self._union_targets(batch)
            loop = asyncio.get_running_loop()
            try:
                result = await loop.run_in_executor(
                    self._executor,
                    lambda: engine.infer_cases(cases, targets=targets))
            except EvidenceError:
                # An impossible case empties a message and aborts the whole
                # vectorised pass; re-run case-by-case so only that request
                # fails.
                await self._run_individually(entry, batch)
                return
            except BaseException as exc:  # noqa: BLE001 - fan the failure out
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
                return
            self.metrics.observe_batch(len(batch))
            for i, pending in enumerate(batch):
                if not pending.future.done():
                    pending.future.set_result(
                        _project(result.case(i), pending.request.targets))
        finally:
            self.registry.unpin(entry)

    async def _run_individually(self, entry: ModelEntry,
                                batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        self.metrics.observe_fallback(len(batch))
        for pending in batch:
            request = pending.request
            try:
                result = await loop.run_in_executor(
                    self._executor,
                    lambda req=request: entry.engine.infer(
                        req.evidence, req.targets,
                        soft_evidence=req.soft_evidence))
            # BaseException, not ReproError: an unexpected failure
            # (MemoryError, a shutdown executor, cancellation) must still
            # resolve this future, or its client waits forever.
            except BaseException as exc:  # noqa: BLE001
                if not pending.future.done():
                    pending.future.set_exception(exc)
            else:
                if not pending.future.done():
                    pending.future.set_result(result)

    async def _run_single(self, entry: ModelEntry,
                          request: QueryRequest) -> InferenceResult:
        """Per-case path for requests the vectorised kernels cannot express."""
        self.metrics.observe_fallback()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor,
            lambda: entry.engine.infer(request.evidence, request.targets,
                                       soft_evidence=request.soft_evidence))

    # ------------------------------------------------------------- lifecycle
    async def drain(self) -> None:
        """Flush every queue and wait for all in-flight batches to finish."""
        for network in list(self._queues):
            self._flush(network)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        await self.drain()
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._executor.shutdown(wait=True)
