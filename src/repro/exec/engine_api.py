"""The engine protocol: what every inference engine looks like from above.

The service layer (registry, micro-batcher, server) and the planner used
to branch on ``engine_kind`` strings to decide how to validate, batch and
describe each engine.  That knowledge belongs to the engines: every engine
now carries an :class:`EngineCapabilities` record, and callers dispatch on
its flags — a new engine class plugs in by declaring what it can do, not
by teaching every caller a new string.

:class:`InferenceEngine` is the structural protocol the engines satisfy
(``isinstance`` works at runtime); it is intentionally dependency-free so
any layer can import it without dragging in an engine implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@dataclass(frozen=True)
class EngineCapabilities:
    """What one engine class can do, as flags the serving layers dispatch on.

    ``kind`` is the wire label (``"exact"``/``"approx"``) clients see in
    responses and registry keys; every behavioural decision uses the
    boolean flags instead.
    """

    #: Wire/registry label for this engine class.
    kind: str
    #: Posteriors are exact (suitable for 1e-12 pins and MPE).
    exact: bool
    #: ``infer_cases`` runs a whole case list in one vectorised pass.
    vectorized_batches: bool
    #: Accepts per-case soft (likelihood) evidence on ``infer``.
    soft_evidence: bool
    #: Soft-evidence cases may join a vectorised ``infer_cases`` flush
    #: (otherwise the batcher detours them to the per-case path).
    batched_soft_evidence: bool
    #: Results carry uncertainty (stderr / ess / num_samples).
    reports_uncertainty: bool
    #: A junction tree is compiled, so MPE queries can be served.
    supports_mpe: bool
    #: Supports evidence-delta recalibration (cheap ``update``/``clone``).
    incremental: bool = False


#: Capability records of the built-in engine classes.  The planner maps
#: its routing decision through this table so downstream layers receive
#: flags, never bare strings.
EXACT_ENGINE = EngineCapabilities(
    kind="exact", exact=True, vectorized_batches=True, soft_evidence=True,
    batched_soft_evidence=False, reports_uncertainty=False, supports_mpe=True,
)
APPROX_ENGINE = EngineCapabilities(
    kind="approx", exact=False, vectorized_batches=True, soft_evidence=True,
    batched_soft_evidence=True, reports_uncertainty=True, supports_mpe=False,
)
INCREMENTAL_ENGINE = EngineCapabilities(
    kind="exact", exact=True, vectorized_batches=False, soft_evidence=False,
    batched_soft_evidence=False, reports_uncertainty=False, supports_mpe=False,
    incremental=True,
)

CAPABILITIES_BY_KIND = {"exact": EXACT_ENGINE, "approx": APPROX_ENGINE}


@runtime_checkable
class InferenceEngine(Protocol):
    """The calling convention shared by every inference engine.

    Engines are constructed from a network (plus engine-specific options)
    and then answer queries through this surface.  ``capabilities`` is a
    class-level :class:`EngineCapabilities`; ``validate_case`` checks one
    request's evidence without running it (the service validates at submit
    time so a malformed request can never poison a batch it would have
    joined).
    """

    capabilities: EngineCapabilities

    @property
    def name(self) -> str: ...

    def infer(self, evidence=None, targets=(), **kwargs): ...

    def infer_batch(self, cases, case_workers=1, targets=(), **kwargs): ...

    def posteriors(self, targets=(), evidence=None): ...

    def validate_case(self, evidence=None, soft_evidence=None): ...

    def stats(self) -> dict: ...

    def close(self) -> None: ...
