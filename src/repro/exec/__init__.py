"""The shared execution layer: compile-once plans + pluggable kernels.

Three pieces, consumed by every engine (see :mod:`repro.core`,
:mod:`repro.jt.incremental`) and by the service layer:

* :mod:`repro.exec.plan` — :func:`compile_plan` turns a junction tree +
  layer schedule into a :class:`MessagePlan`: one contiguous arena layout
  with offsets for every clique/separator table plus per-edge
  :class:`EdgeGeometry` in both the index-map and N-D-view formulations;
* :mod:`repro.exec.kernels` — the :class:`KernelBackend` protocol with
  the ``numpy`` reference backend, the ``fused`` backend that executes
  marginalize+absorb as one pass per message over the arena, and the
  ``native`` backend (:mod:`repro.exec.native`) that compiles those
  passes to a C library called GIL-free through ``ctypes``;
* :mod:`repro.exec.engine_api` — the :class:`InferenceEngine` protocol
  and :class:`EngineCapabilities` flags the service layers dispatch on.
"""

from repro.exec.engine_api import (APPROX_ENGINE, CAPABILITIES_BY_KIND,
                                   EXACT_ENGINE, INCREMENTAL_ENGINE,
                                   EngineCapabilities, InferenceEngine)
from repro.exec.kernels import (KERNELS, FusedKernels, KernelBackend,
                                NumpyKernels, get_kernels,
                                run_message_schedule)

#: Plan symbols resolve lazily: repro.exec.plan sits above the potential
#: and jt layers, whose modules import repro.exec.kernels — an eager
#: import here would close that cycle.
_PLAN_EXPORTS = ("EdgeGeometry", "MessagePlan", "PlanSpec", "compile_plan",
                 "stride_triples")
#: Native symbols resolve lazily too: NativeKernels needs a built
#: library, and the availability probe should not be paid at import time.
_NATIVE_EXPORTS = ("load_native_kernels", "native_status")


def __getattr__(name: str):
    if name in _PLAN_EXPORTS:
        from repro.exec import plan

        return getattr(plan, name)
    if name in _NATIVE_EXPORTS:
        from repro.exec import native

        return getattr(native, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "APPROX_ENGINE",
    "CAPABILITIES_BY_KIND",
    "EXACT_ENGINE",
    "INCREMENTAL_ENGINE",
    "EdgeGeometry",
    "EngineCapabilities",
    "FusedKernels",
    "InferenceEngine",
    "KERNELS",
    "KernelBackend",
    "MessagePlan",
    "NumpyKernels",
    "PlanSpec",
    "compile_plan",
    "get_kernels",
    "load_native_kernels",
    "native_status",
    "run_message_schedule",
    "stride_triples",
]
