"""Build and load the native message-kernel library.

The C source below is the whole library: one function executing a full
Hugin message (marginalize → normalize → ratio → absorb) over contiguous
float64 tables through precomputed int64 index maps, plus its batched
table-major variant.  It is compiled on first use with whatever C compiler
the system provides (``cc``/``gcc``/``clang``; ``-O3 -fPIC -shared``) into
a shared object cached under a **content-hash key** — the SHA-256 of the
source text plus the compiler path — so a source or toolchain change can
never pick up a stale binary, and repeat runs (including separate worker
processes) just ``dlopen`` the cached file.

Cache location: ``$REPRO_NATIVE_CACHE`` if set, else
``$XDG_CACHE_HOME/fastbni/native``, else ``~/.cache/fastbni/native``.
Builds are atomic (compile into a tempdir, ``os.replace`` into place), so
concurrent first-use from several processes is safe.

Failure is a *value*, not an exception: :func:`load_library` returns
``(lib, path, None)`` on success and ``(None, None, reason)`` when there
is no compiler, the compile fails, or ``REPRO_NATIVE_DISABLE`` is set.
The registry (:func:`repro.exec.kernels.get_kernels`) turns that reason
into a logged fallback to the ``fused`` backend.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

#: Set to any non-empty value to force the fused fallback (lets tests and
#: compiler-less CI runners exercise the degradation path deterministically).
DISABLE_ENV = "REPRO_NATIVE_DISABLE"
#: Overrides the compile-cache directory.
CACHE_ENV = "REPRO_NATIVE_CACHE"

C_SOURCE = r"""
/* fastbni native message kernels.
 *
 * One whole junction-tree message per call: scatter-marginalize the
 * source clique onto the separator through its index map, normalize
 * (scaled propagation), divide by the old separator with the x/0 = 0
 * convention written as new/(old + (old==0)) -- valid because separator
 * zeros only ever grow during propagation, so old==0 implies new==0 --
 * then gather-absorb the ratio into the destination clique and overwrite
 * the separator.  Matches the Python `fused` backend to float64
 * round-off.
 *
 * The optional run lists ([start, end) int64 pairs) skip stretches of
 * the source/destination tables whose CPT-product base entries are zero:
 * a zero contributes nothing to a marginal and stays zero under the
 * multiply-only updates calibration performs, so both loops may jump
 * over them.
 */
#include <math.h>
#include <stdint.h>
#include <string.h>

typedef int64_t i64;

static void marg_range(const double *src, const i64 *map, double *acc,
                       i64 lo, i64 hi)
{
    for (i64 i = lo; i < hi; ++i)
        acc[map[i]] += src[i];
}

static void absorb_range(double *dst, const double *ratio, const i64 *map,
                         i64 lo, i64 hi)
{
    for (i64 i = lo; i < hi; ++i)
        dst[i] *= ratio[map[i]];
}

/* scratch must hold 2 * sep_size doubles (new separator + ratio).
 * Returns the message total; a total <= 0 signals impossible evidence
 * and leaves dst/sep untouched. */
double fbni_message(const double *src, double *dst, double *sep,
                    const i64 *m_marg, const i64 *m_abs,
                    i64 src_size, i64 dst_size, i64 sep_size,
                    double *scratch,
                    const i64 *src_runs, i64 n_src_runs,
                    const i64 *dst_runs, i64 n_dst_runs)
{
    double *new_sep = scratch;
    double *ratio = scratch + sep_size;
    memset(new_sep, 0, (size_t)sep_size * sizeof(double));
    if (src_runs) {
        for (i64 r = 0; r < n_src_runs; ++r)
            marg_range(src, m_marg, new_sep,
                       src_runs[2 * r], src_runs[2 * r + 1]);
    } else {
        marg_range(src, m_marg, new_sep, 0, src_size);
    }
    double total = 0.0;
    for (i64 j = 0; j < sep_size; ++j)
        total += new_sep[j];
    if (!(total > 0.0))
        return total;
    for (i64 j = 0; j < sep_size; ++j) {
        double ns = new_sep[j] / total;
        double old = sep[j];
        ratio[j] = ns / (old + (old == 0.0 ? 1.0 : 0.0));
        sep[j] = ns;
    }
    if (dst_runs) {
        for (i64 r = 0; r < n_dst_runs; ++r)
            absorb_range(dst, ratio, m_abs,
                         dst_runs[2 * r], dst_runs[2 * r + 1]);
    } else {
        absorb_range(dst, ratio, m_abs, 0, dst_size);
    }
    return total;
}

/* Table-major batch: src is (k, src_size) row-major contiguous, etc.
 * totals[c] receives each case's message total.  Returns the first case
 * index whose message came up empty (total <= 0), or -1 when all k
 * cases normalised cleanly. */
i64 fbni_message_batch(const double *src, double *dst, double *sep,
                       const i64 *m_marg, const i64 *m_abs,
                       i64 src_size, i64 dst_size, i64 sep_size, i64 k,
                       double *scratch, double *totals)
{
    for (i64 c = 0; c < k; ++c) {
        double total = fbni_message(src + c * src_size,
                                    dst + c * dst_size,
                                    sep + c * sep_size,
                                    m_marg, m_abs,
                                    src_size, dst_size, sep_size,
                                    scratch, 0, 0, 0, 0);
        totals[c] = total;
        if (!(total > 0.0))
            return c;
    }
    return -1;
}

/* The whole calibration as one foreign call: the compiled schedule is
 * handed over as a flat i64 metadata table, FBNI_META_STRIDE words per
 * message:
 *
 *   [0] upward flag            [1] src arena offset (entries)
 *   [2] dst arena offset       [3] sep arena offset
 *   [4] src size               [5] dst size
 *   [6] sep size               [7] marginalize-map address
 *   [8] absorb-map address     [9] src nonzero-runs address (0 = dense)
 *   [10] src run count         [11] dst nonzero-runs address (0 = dense)
 *   [12] dst run count
 *
 * Map/run addresses are raw pointers to int64 arrays the caller keeps
 * alive; table operands are located by offset from the state's arena
 * base, so one compiled schedule serves every per-case arena.  Returns
 * the accumulated log-normalisation constant of the collect phase;
 * status[0] receives -1, or the index of the message whose total came
 * up empty (impossible evidence). */
#define FBNI_META_STRIDE 13

double fbni_run_schedule(double *arena, const i64 *meta, i64 n_messages,
                         double *scratch, i64 *status)
{
    double log_norm = 0.0;
    for (i64 m = 0; m < n_messages; ++m) {
        const i64 *e = meta + m * FBNI_META_STRIDE;
        double total = fbni_message(
            arena + e[1], arena + e[2], arena + e[3],
            (const i64 *)(uintptr_t)e[7], (const i64 *)(uintptr_t)e[8],
            e[4], e[5], e[6], scratch,
            (const i64 *)(uintptr_t)e[9], e[10],
            (const i64 *)(uintptr_t)e[11], e[12]);
        if (!(total > 0.0)) {
            status[0] = m;
            return 0.0;
        }
        if (e[0])
            log_norm += log(total);
    }
    status[0] = -1;
    return log_norm;
}

/* Calibrate many single-case arenas in one foreign call: the coarsest
 * granularity, used by thread-dispatched case chunks so each worker
 * spends milliseconds GIL-free instead of re-entering the interpreter
 * per case.  arena_addrs holds the raw base address of each case's
 * arena; log_norms[c] receives case c's collect-phase constant.  On an
 * empty message, status[0] = failing case index, status[1] = failing
 * message index and the remaining cases are left uncalibrated. */
void fbni_run_schedules(const i64 *arena_addrs, i64 n_arenas,
                        const i64 *meta, i64 n_messages,
                        double *scratch, double *log_norms, i64 *status)
{
    for (i64 c = 0; c < n_arenas; ++c) {
        i64 bad = -1;
        log_norms[c] = fbni_run_schedule((double *)(uintptr_t)arena_addrs[c],
                                         meta, n_messages, scratch, &bad);
        if (bad >= 0) {
            status[0] = c;
            status[1] = bad;
            return;
        }
    }
    status[0] = -1;
    status[1] = -1;
}

/* Pure-ALU spin used only by the parallel-headroom probe: two threads
 * calling this concurrently measure how much genuine parallelism the
 * machine can express through GIL-free ctypes calls (shared/stolen vCPUs
 * and single-core boxes show ~1.0x).  The result feeds the honest-skip
 * logic of the thread-scaling benchmark gate. */
double fbni_probe_spin(i64 n)
{
    double acc = 0.0;
    for (i64 i = 0; i < n; ++i)
        acc += (double)(i & 1023) * 1e-9;
    return acc;
}
"""

#: i64 words of schedule metadata per message (mirrors FBNI_META_STRIDE).
META_STRIDE = 13


def cache_dir() -> Path:
    """The compile-cache directory (see the module docstring)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "fastbni" / "native"


def find_compiler() -> str | None:
    """First usable C compiler on PATH, or ``None``."""
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def source_key(compiler: str) -> str:
    """Content-hash cache key: source text + compiler path."""
    digest = hashlib.sha256()
    digest.update(C_SOURCE.encode())
    digest.update(b"\0")
    digest.update(compiler.encode())
    return digest.hexdigest()[:16]


def _declare(lib: ctypes.CDLL) -> None:
    # Pointers are passed as raw addresses (ndarray.ctypes.data) to keep
    # per-call argument marshalling at integer cost.
    ptr = ctypes.c_void_p
    i64 = ctypes.c_int64
    lib.fbni_message.argtypes = [ptr, ptr, ptr, ptr, ptr,
                                 i64, i64, i64, ptr, ptr, i64, ptr, i64]
    lib.fbni_message.restype = ctypes.c_double
    lib.fbni_message_batch.argtypes = [ptr, ptr, ptr, ptr, ptr,
                                       i64, i64, i64, i64, ptr, ptr]
    lib.fbni_message_batch.restype = i64
    lib.fbni_run_schedule.argtypes = [ptr, ptr, i64, ptr, ptr]
    lib.fbni_run_schedule.restype = ctypes.c_double
    lib.fbni_run_schedules.argtypes = [ptr, i64, ptr, i64, ptr, ptr, ptr]
    lib.fbni_run_schedules.restype = None
    lib.fbni_probe_spin.argtypes = [i64]
    lib.fbni_probe_spin.restype = ctypes.c_double


def load_library() -> tuple[ctypes.CDLL | None, Path | None, str | None]:
    """Compile (if needed) and load the kernel library.

    Returns ``(lib, so_path, None)`` on success, ``(None, None, reason)``
    on any failure — callers fall back to the fused backend and surface
    the reason.
    """
    if os.environ.get(DISABLE_ENV):
        return None, None, f"disabled via {DISABLE_ENV}"
    compiler = find_compiler()
    if compiler is None:
        return None, None, "no C compiler found on PATH (tried cc, gcc, clang)"
    directory = cache_dir()
    so_path = directory / f"fbni_kernels_{source_key(compiler)}.so"
    if not so_path.exists():
        try:
            directory.mkdir(parents=True, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=directory) as tmp:
                c_file = Path(tmp) / "fbni_kernels.c"
                c_file.write_text(C_SOURCE)
                tmp_so = Path(tmp) / "fbni_kernels.so"
                cmd = [compiler, "-O3", "-fPIC", "-shared",
                       "-o", str(tmp_so), str(c_file), "-lm"]
                proc = subprocess.run(cmd, capture_output=True, text=True,
                                      timeout=120)
                if proc.returncode != 0:
                    detail = (proc.stderr or proc.stdout).strip()[:500]
                    return None, None, f"compile failed ({compiler}): {detail}"
                os.replace(tmp_so, so_path)
        except (OSError, subprocess.SubprocessError) as exc:
            return None, None, f"could not build native library: {exc}"
    try:
        lib = ctypes.CDLL(str(so_path))
        _declare(lib)
    except (OSError, AttributeError) as exc:
        return None, None, f"could not load {so_path}: {exc}"
    return lib, so_path, None


def probe_parallel_headroom(lib: ctypes.CDLL, threads: int = 2,
                            spin: int = 12_000_000, repeats: int = 5) -> float:
    """How much parallel speedup this machine can express right now.

    Runs ``threads`` concurrent GIL-free ``fbni_probe_spin`` calls against
    the same work executed serially (best-of-``repeats`` each, after a
    warm-up) and returns serial/parallel wall-clock.  ~``threads``x on a
    box with that many idle cores; ~1.0x on one core, and anywhere in
    between on shared/stolen vCPUs.  Gates (tests, ``check_bench``) use
    this to enforce the thread-scaling floor only where the hardware can
    express it, and to skip with an honest reason where it can't.
    """
    import threading
    import time

    fn = lib.fbni_probe_spin
    fn(spin)  # warm

    def serial() -> float:
        start = time.perf_counter()
        for _ in range(threads):
            fn(spin)
        return time.perf_counter() - start

    def parallel() -> float:
        workers = [threading.Thread(target=fn, args=(spin,))
                   for _ in range(threads)]
        start = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        return time.perf_counter() - start

    serial(); parallel()  # warm both shapes
    best_serial = min(serial() for _ in range(repeats))
    best_parallel = min(parallel() for _ in range(repeats))
    return best_serial / best_parallel
