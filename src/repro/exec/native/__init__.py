"""Native (C, via ctypes) kernel backend — compile-on-first-use.

Public surface:

* :func:`load_native_kernels` — build/load the library and return a
  ready :class:`~repro.exec.native.backend.NativeKernels`, or ``(None,
  reason)`` when the toolchain is missing (callers fall back to
  ``fused``);
* :func:`native_status` — availability probe for benches, tests and CI
  (``(available, reason)`` without constructing a backend twice).
"""

from __future__ import annotations

from repro.exec.native.build import (CACHE_ENV, DISABLE_ENV, C_SOURCE,
                                     cache_dir, find_compiler, load_library,
                                     probe_parallel_headroom)

__all__ = ["CACHE_ENV", "DISABLE_ENV", "C_SOURCE", "cache_dir",
           "find_compiler", "load_library", "load_native_kernels",
           "native_status", "probe_parallel_headroom"]


def load_native_kernels():
    """``(NativeKernels, None)`` when the library builds, else ``(None, reason)``."""
    lib, so_path, reason = load_library()
    if lib is None:
        return None, reason
    from repro.exec.native.backend import NativeKernels

    return NativeKernels(lib, so_path), None


def native_status() -> tuple[bool, str | None]:
    """Whether the native backend can be built here, and why not if not."""
    lib, _, reason = load_library()
    return (lib is not None), reason
