"""The ``native`` kernel backend: messages execute outside the interpreter.

:class:`NativeKernels` implements the :class:`~repro.exec.kernels.
KernelBackend` contract by handing each whole message to one C call
(:mod:`repro.exec.native.build`).  Two properties follow that no NumPy
formulation has:

* **GIL release** — ``ctypes`` drops the GIL for the duration of every
  foreign call, so thread-dispatched case blocks
  (:func:`repro.core.batch.calibrate_case_block` on the ``thread``
  backend) genuinely overlap on separate cores instead of time-slicing
  one interpreter;
* **zero-block skipping** — the single-case schedule passes per-clique
  nonzero-run lists derived from the plan's CPT-product base tables
  (:meth:`repro.exec.plan.MessagePlan.zero_skip_runs`); the C loops jump
  over entries that are structurally zero, which deterministic-CPT
  networks have in bulk.

Numerically the backend follows the ``fused`` conventions exactly (same
``new/(old + (old == 0))`` separator update, same normalisation points),
so the property suite pins it against ``numpy`` at 1e-12 like any other
backend.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from repro.errors import EvidenceError
from repro.exec.kernels import KernelBackend, triples_to_map
from repro.exec.native.build import META_STRIDE


class NativeKernels(KernelBackend):
    """C-library backend: GIL-free foreign calls instead of NumPy dispatch.

    Construct via :func:`repro.exec.native.load_native_kernels` (which
    compiles/loads the library) — the registry does this lazily on first
    ``get_kernels("native")``.

    Three granularities, coarsest first:

    * :meth:`run_schedule` — the whole single-case calibration as **one**
      foreign call over a per-plan compiled metadata table (the schedule
      is compiled, not interpreted: per-message Python/ctypes overhead is
      paid zero times per case).  Used by ``run_message_schedule`` when
      no kernel hooks are recording;
    * :meth:`message_batch` — one call per message covering a whole case
      block (the batched engine's path; the per-call overhead amortises
      over the block's rows);
    * :meth:`message` — one call per message (the property-test contract
      and the hooks-instrumented trace path).
    """

    name = "native"
    wants_maps = True
    #: The schedule loop passes per-clique nonzero-run skip lists.
    wants_skips = True
    #: run_message_schedule may delegate whole calibrations to run_schedule.
    compiles_schedule = True

    def __init__(self, lib, library_path) -> None:
        self._lib = lib
        self.library_path = str(library_path)
        self._message = lib.fbni_message
        self._message_batch = lib.fbni_message_batch
        self._run_schedule = lib.fbni_run_schedule
        self._run_schedules = lib.fbni_run_schedules
        # Per-thread scratch (2 * sep_size doubles) and status word: the
        # backend is a process-wide singleton and thread-dispatched case
        # blocks / per-case threads call into it concurrently.
        self._local = threading.local()

    def _scratch(self, sep_size: int) -> np.ndarray:
        buf = getattr(self._local, "buf", None)
        if buf is None or buf.size < 2 * sep_size:
            buf = self._local.buf = np.empty(max(2 * sep_size, 512))
        return buf

    def _status(self) -> np.ndarray:
        status = getattr(self._local, "status", None)
        if status is None:
            status = self._local.status = np.empty(2, dtype=np.int64)
        return status

    # ------------------------------------------------------ compiled schedule
    def _compile_schedule(self, plan, map_limit):
        """Build the per-plan metadata table ``fbni_run_schedule`` walks.

        Returns ``False`` (cached by the caller) when the plan's index
        maps exceed the cache budget — the per-message path then handles
        the plan generically.
        """
        spec = plan.spec
        msgs = plan.compiled_messages(limit=map_limit)
        runs = plan.zero_skip_runs()
        meta = np.zeros((len(msgs), META_STRIDE), dtype=np.int64)
        keepalive = []
        for i, (upward, src, dst, sep_id, edge, m_marg, m_abs) in enumerate(msgs):
            if m_marg is None or m_abs is None:
                return False
            src_runs, dst_runs = runs[src], runs[dst]
            meta[i] = (
                int(upward),
                spec.clique_offsets[src], spec.clique_offsets[dst],
                spec.sep_offsets[sep_id],
                spec.clique_sizes[src], spec.clique_sizes[dst],
                spec.sep_sizes[sep_id],
                m_marg.ctypes.data, m_abs.ctypes.data,
                0 if src_runs is None else src_runs.ctypes.data,
                0 if src_runs is None else src_runs.size // 2,
                0 if dst_runs is None else dst_runs.ctypes.data,
                0 if dst_runs is None else dst_runs.size // 2,
            )
            keepalive.append((m_marg, m_abs, src_runs, dst_runs))
        max_sep = max(spec.sep_sizes, default=0)
        return meta, keepalive, max_sep, len(msgs)

    def run_schedule(self, plan, state, map_limit=None):
        """Calibrate ``state`` in one foreign call; ``(messages, log_norm)``.

        Returns ``None`` when this plan/state pair can't take the fast
        path — index maps over budget, or a state whose tables are not
        the plan's arena layout (checked by address arithmetic on the
        first/last tables; only ``MessagePlan.fresh_state`` arenas pass).
        The caller then falls back to the per-message loop.
        """
        blob = plan.__dict__.get("_native_schedule")
        if blob is None:
            blob = plan.__dict__["_native_schedule"] = \
                self._compile_schedule(plan, map_limit)
        if blob is False:
            return None
        meta, _keepalive, max_sep, n_messages = blob
        spec = plan.spec
        if n_messages == 0:
            return 0, 0.0
        base = self._arena_base(spec, state)
        if base is None:
            return None
        scratch = self._scratch(max_sep)
        status = self._status()
        log_norm = self._run_schedule(base, meta.ctypes.data, n_messages,
                                      scratch.ctypes.data, status.ctypes.data)
        bad = int(status[0])
        if bad >= 0:
            raise EvidenceError("evidence has zero probability (empty message)")
        return n_messages, log_norm

    def _arena_base(self, spec, state) -> int | None:
        """The state's arena base address, or None if it isn't plan-shaped."""
        cliques = state.clique_pot
        base = cliques[0].values.ctypes.data
        last = len(cliques) - 1
        if cliques[last].values.ctypes.data != base + 8 * spec.clique_offsets[last]:
            return None
        seps = state.sep_pot
        if seps and (seps[-1].values.ctypes.data
                     != base + 8 * spec.sep_offsets[-1]):
            return None
        return base

    def run_schedules(self, plan, states, map_limit=None):
        """Calibrate many single-case arena states in **one** foreign call.

        The coarsest dispatch unit: a thread-dispatched chunk of cases
        spends its whole calibration GIL-free, so chunks overlap on real
        cores instead of ping-ponging the GIL at per-message granularity.
        Adds each state's collect-phase constant to its ``log_norm`` and
        returns the number of messages executed per state; ``None`` when
        the fast path is unavailable (the caller loops per state).
        """
        blob = plan.__dict__.get("_native_schedule")
        if blob is None:
            blob = plan.__dict__["_native_schedule"] = \
                self._compile_schedule(plan, map_limit)
        if blob is False:
            return None
        meta, _keepalive, max_sep, n_messages = blob
        if n_messages == 0:
            return 0
        spec = plan.spec
        addrs = np.empty(len(states), dtype=np.int64)
        for i, state in enumerate(states):
            base = self._arena_base(spec, state)
            if base is None:
                return None
            addrs[i] = base
        log_norms = np.empty(len(states))
        scratch = self._scratch(max_sep)
        status = self._status()
        self._run_schedules(addrs.ctypes.data, len(states),
                            meta.ctypes.data, n_messages,
                            scratch.ctypes.data, log_norms.ctypes.data,
                            status.ctypes.data)
        if int(status[0]) >= 0:
            raise EvidenceError("evidence has zero probability (empty message)")
        for state, log_norm in zip(states, log_norms):
            state.log_norm += log_norm
        return n_messages

    @staticmethod
    def _maps_for(src, dst, edge, upward, maps):
        m_marg, m_abs = maps
        if m_marg is None:
            m_marg = triples_to_map(
                src.shape[-1], edge.marg_up if upward else edge.marg_down)
        if m_abs is None:
            m_abs = triples_to_map(
                dst.shape[-1], edge.absorb_up if upward else edge.absorb_down)
        return m_marg, m_abs

    def message(self, src, dst, sep, edge, upward, maps=(None, None),
                skips=(None, None)):
        m_marg, m_abs = self._maps_for(src, dst, edge, upward, maps)
        scratch = self._scratch(edge.sep_size)
        src_runs, dst_runs = skips
        total = self._message(
            src.ctypes.data, dst.ctypes.data, sep.ctypes.data,
            m_marg.ctypes.data, m_abs.ctypes.data,
            src.size, dst.size, edge.sep_size,
            scratch.ctypes.data,
            None if src_runs is None else src_runs.ctypes.data,
            0 if src_runs is None else src_runs.size // 2,
            None if dst_runs is None else dst_runs.ctypes.data,
            0 if dst_runs is None else dst_runs.size // 2,
        )
        if total <= 0.0:
            raise EvidenceError("evidence has zero probability (empty message)")
        return math.log(total)

    def message_batch(self, src, dst, sep, edge, upward, maps=(None, None),
                      case_offset=0):
        m_marg, m_abs = self._maps_for(src, dst, edge, upward, maps)
        k = src.shape[0]
        scratch = self._scratch(edge.sep_size)
        totals = np.empty(k)
        bad = self._message_batch(
            src.ctypes.data, dst.ctypes.data, sep.ctypes.data,
            m_marg.ctypes.data, m_abs.ctypes.data,
            src.shape[1], dst.shape[1], edge.sep_size, k,
            scratch.ctypes.data, totals.ctypes.data,
        )
        if bad >= 0:
            raise EvidenceError(
                "evidence has zero probability (empty message) in case "
                f"{case_offset + bad}"
            )
        return np.log(totals)
