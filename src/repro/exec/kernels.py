"""The message kernels: one place where a junction-tree message executes.

Fast-BNI's profiling argument (paper §1) is that fine-grained engines lose
to "large parallelization overhead since the table operations are invoked
frequently" — table ops are small, so fixed per-invocation cost dominates.
Before this module existed the repo re-derived those table operations in
four places; now every engine funnels through the primitives here, and a
speedup to a kernel lands everywhere at once.

Two layers:

* **Primitive functions** — ``gather_*`` (the paper-faithful index-mapping
  formulation: flat maps, ``bincount`` scatter, fancy-index gather) and
  ``nd_*`` (NumPy reshape/sum/broadcast over the N-D view).  Each comes in
  a single-case and an ``(N, table)`` batched form.  These are what
  :mod:`repro.potential.ops` and :mod:`repro.core.primitives` wrap.

* **Kernel backends** — a :class:`KernelBackend` executes one whole Hugin
  message (marginalize → normalize → ratio → absorb) over arena tables:

  - ``numpy``: the textbook NumPy reference — reshape the flat tables to
    their N-D views, ``sum`` out axes to marginalize, broadcast-multiply
    to absorb.  Clean, obviously-correct, and per-invocation expensive:
    every call re-pays NumPy's reduction/broadcast setup, the exact
    per-table-operation overhead the paper profiles;
  - ``fused``: each message executes as **one fused kernel invocation
    over the flat arena** — a single ``bincount`` scatter pass through
    the plan's precomputed index map (marginalize) and a single
    fancy-index gather pass (absorb), with the whole message sequence
    pre-compiled by the plan (:meth:`repro.exec.plan.MessagePlan.
    compiled_messages`) so the hot loop touches no domain algebra, no
    shape bookkeeping and no per-op dispatch.  This is the paper's
    compile-time-index-map amortisation carried to its end point.

  - ``native``: the same fused message executed by **one C call outside
    the interpreter** (:mod:`repro.exec.native`) — compiled on first use
    with the system C compiler into a content-hash-cached ``.so`` and
    invoked through ``ctypes``, which releases the GIL for the duration
    of every call (thread-dispatched case blocks overlap on real cores)
    and skips zero blocks of the CPT-product base tables via per-plan
    run lists.  When no C compiler is available, selecting ``native``
    falls back to ``fused`` with a logged reason; ``info``/``stats``
    then honestly report the active backend as ``fused``.

  All backends are bit-compatible to float64 round-off (the property
  suites pin 1e-12 agreement over random and degenerate geometries);
  ``fused`` is the default and ``BENCH_exec.json`` tracks every backend.

Backends are per-process singletons resolved lazily from one registry;
select one with :func:`get_kernels`.  ``KERNELS`` is derived from that
registry, so the advertised names and the resolvable names can't drift.
"""

from __future__ import annotations

import logging
import math
import time

import numpy as np

from repro.errors import BackendError, EvidenceError
from repro.obs.trace import current_kernel_hooks

logger = logging.getLogger(__name__)

#: per destination variable: (stride in src domain, cardinality, stride in dst)
StrideTriples = tuple[tuple[int, int, int], ...]

#: Flattened-bincount cutover: above this many (case, entry) pairs the
#: shifted int64 index temp would rival the batch table itself, so the
#: batched marginalization falls back to one bincount per case row.
FLAT_BINCOUNT_LIMIT = 1 << 22


def triples_to_map(size: int, triples: StrideTriples) -> np.ndarray:
    """Materialise the flat source→destination index map from stride triples."""
    idx = np.arange(size, dtype=np.int64)
    out = np.zeros(size, dtype=np.int64)
    for s_src, card, s_dst in triples:
        out += ((idx // s_src) % card) * s_dst
    return out


# ------------------------------------------------------------ gather (indexmap)
def gather_marginalize(values: np.ndarray, imap: np.ndarray,
                       dst_size: int) -> np.ndarray:
    """Marginalize one flat table through its index map (bincount scatter)."""
    return np.bincount(imap, weights=values, minlength=dst_size)


def gather_absorb(values: np.ndarray, msg: np.ndarray,
                  imap: np.ndarray) -> None:
    """In-place ``values *= extend(msg)`` through the index map (gather)."""
    values *= msg[imap]


def gather_marginalize_batch(values: np.ndarray, imap: np.ndarray,
                             dst_size: int,
                             flat_limit: int = FLAT_BINCOUNT_LIMIT) -> np.ndarray:
    """Batched marginalization: ``(k, src)`` rows → ``(k, dst)`` messages.

    One C-level bincount over the case-shifted flat map while the shifted
    index temp stays affordable (``flat_limit``); per-row bincounts beyond.
    """
    k, size = values.shape
    if k * size <= flat_limit:
        shifted = imap[None, :] + (np.arange(k, dtype=np.int64) * dst_size)[:, None]
        flat = np.bincount(shifted.ravel(), weights=values.ravel(),
                           minlength=k * dst_size)
        return flat.reshape(k, dst_size)
    out = np.empty((k, dst_size))
    for i in range(k):
        out[i] = np.bincount(imap, weights=values[i], minlength=dst_size)
    return out


def gather_absorb_batch(values: np.ndarray, msg: np.ndarray,
                        imap: np.ndarray) -> None:
    """Batched in-place ``values *= extend(msg)``: one 2-D fancy-index gather."""
    values *= msg[:, imap]


# --------------------------------------------------------------- ndview (fused)
def nd_marginalize(values: np.ndarray, shape: tuple[int, ...],
                   drop_axes: tuple[int, ...]) -> np.ndarray:
    """Marginalize one flat table by summing the dropped axes of its N-D view."""
    if not drop_axes:
        return values.copy()
    return values.reshape(shape).sum(axis=drop_axes).reshape(-1)


def nd_absorb(values: np.ndarray, msg: np.ndarray, shape: tuple[int, ...],
              bshape: tuple[int, ...]) -> None:
    """In-place ``values *= msg`` where ``bshape`` broadcasts msg over shape.

    ``bshape`` keeps the message variables' cardinalities and sets every
    other axis to 1 — valid whenever the message's variable order is a
    sub-order of the table's (the junction-tree compile guarantees this).
    """
    values.reshape(shape)[...] *= msg.reshape(bshape)


def nd_marginalize_batch(values: np.ndarray, shape: tuple[int, ...],
                         drop_axes: tuple[int, ...]) -> np.ndarray:
    """Batched N-D marginalization: sum the (1-shifted) dropped axes."""
    k = values.shape[0]
    if not drop_axes:
        return values.copy()
    axes = tuple(a + 1 for a in drop_axes)
    return np.ascontiguousarray(
        values.reshape((k,) + tuple(shape)).sum(axis=axes).reshape(k, -1))


def nd_absorb_batch(values: np.ndarray, msg: np.ndarray,
                    dst_shape: tuple[int, ...], msg_shape: tuple[int, ...],
                    axes: tuple[int, ...]) -> None:
    """Batched in-place ``values *= extend(msg)`` over the case axis.

    ``axes[i]`` is the destination axis of the message's *i*-th variable;
    unlike :func:`nd_absorb` the message order need not be a sub-order of
    the destination's (general domains transpose first).
    """
    k = values.shape[0]
    nd = msg.reshape((k,) + tuple(msg_shape))
    order = sorted(range(len(axes)), key=lambda i: axes[i])
    if order != list(range(len(axes))):
        nd = nd.transpose((0,) + tuple(o + 1 for o in order))
    bshape = [1] * (len(dst_shape) + 1)
    bshape[0] = k
    for i, ax in enumerate(axes):
        bshape[ax + 1] = msg_shape[i]
    values.reshape((k,) + tuple(dst_shape))[...] *= nd.reshape(bshape)


# ---------------------------------------------------------------------- ratios
def ratio_vector(new: np.ndarray, old: np.ndarray) -> np.ndarray:
    """Separator update ``new/old`` with the JT convention ``x/0 = 0``."""
    out = np.zeros_like(new)
    np.divide(new, old, out=out, where=old != 0)
    return out


def _normalize_batch(new_sep: np.ndarray, case_offset: int) -> np.ndarray:
    """Row-normalise a ``(k, sep)`` message block; returns per-row log totals."""
    totals = new_sep.sum(axis=1)
    bad = np.flatnonzero(~(totals > 0.0))
    if bad.size:
        raise EvidenceError(
            "evidence has zero probability (empty message) in case "
            f"{case_offset + bad[0]}"
        )
    new_sep /= totals[:, None]
    return np.log(totals)


# -------------------------------------------------------------------- backends
class KernelBackend:
    """One whole Hugin message over arena tables (see the module docstring).

    ``message``/``message_batch`` marginalize ``src`` onto the separator,
    normalise (scaled propagation), divide by the old separator, absorb
    the ratio into ``dst`` and overwrite the separator in place, returning
    the log normalisation constant(s).  ``maps`` optionally carries the
    cached ``(marginalize, absorb)`` index maps; gather-based backends
    (``fused``) advertise ``wants_maps = True`` so callers prefetch them,
    while ndview backends (``numpy``) advertise ``False`` so callers skip
    building maps they would never read.
    """

    name = "abstract"
    #: Whether this backend consumes precomputed flat index maps.
    wants_maps = False

    def message(self, src: np.ndarray, dst: np.ndarray, sep: np.ndarray,
                edge, upward: bool,
                maps: tuple[np.ndarray | None, np.ndarray | None] = (None, None),
                ) -> float:
        raise NotImplementedError

    def message_batch(self, src: np.ndarray, dst: np.ndarray, sep: np.ndarray,
                      edge, upward: bool,
                      maps: tuple[np.ndarray | None, np.ndarray | None] = (None, None),
                      case_offset: int = 0) -> np.ndarray:
        raise NotImplementedError


class NumpyKernels(KernelBackend):
    """Textbook NumPy reference: N-D views, axis sums, broadcast multiplies.

    One reduction/broadcast *setup* per table operation — the baseline the
    fused backend is measured against (``BENCH_exec.json``).
    """

    name = "numpy"
    wants_maps = False

    def message(self, src, dst, sep, edge, upward, maps=(None, None)):
        if upward:
            src_shape, drop = edge.child_shape, edge.up_axes
            dst_shape, bshape = edge.parent_shape, edge.parent_bshape
        else:
            src_shape, drop = edge.parent_shape, edge.down_axes
            dst_shape, bshape = edge.child_shape, edge.child_bshape
        new_sep = nd_marginalize(src, src_shape, drop)
        total = float(new_sep.sum())
        if total <= 0.0:
            raise EvidenceError("evidence has zero probability (empty message)")
        new_sep /= total
        ratio = ratio_vector(new_sep, sep)
        nd_absorb(dst, ratio, dst_shape, bshape)
        sep[:] = new_sep
        return math.log(total)

    def message_batch(self, src, dst, sep, edge, upward, maps=(None, None),
                      case_offset=0):
        k = src.shape[0]
        if upward:
            src_shape, drop = edge.child_shape, edge.up_axes
            dst_shape, bshape = edge.parent_shape, edge.parent_bshape
        else:
            src_shape, drop = edge.parent_shape, edge.down_axes
            dst_shape, bshape = edge.child_shape, edge.child_bshape
        new_sep = nd_marginalize_batch(src, src_shape, drop)
        log_totals = _normalize_batch(new_sep, case_offset)
        ratio = np.zeros_like(new_sep)
        np.divide(new_sep, sep, out=ratio, where=sep != 0)
        dst.reshape((k,) + tuple(dst_shape))[...] *= ratio.reshape((k,) + tuple(bshape))
        sep[:] = new_sep
        return log_totals


class FusedKernels(KernelBackend):
    """Fused flat-arena backend: one scatter + one gather pass per message.

    Consumes the plan's precomputed index maps (falling back to on-the-fly
    mixed-radix arithmetic when a map is unavailable, e.g. across a
    process boundary) and never touches N-D views, so the per-message cost
    is two single-pass C loops plus the tiny separator arithmetic.

    The separator update uses ``new / (old + (old == 0))`` instead of a
    masked divide: during propagation zeros only ever *grow* (a killed
    separator entry zeroes the matching clique entries, so later marginals
    stay zero there), hence ``old == 0`` implies ``new == 0`` and the two
    forms are bit-identical — while the unmasked divide skips NumPy's slow
    ``where=`` path.  This invariant holds for calibration states (fresh
    tables, zeroing evidence); callers feeding arbitrary tables get the
    convention only where the invariant does.
    """

    name = "fused"
    wants_maps = True

    def message(self, src, dst, sep, edge, upward, maps=(None, None)):
        m_marg, m_abs = maps
        if m_marg is None:
            m_marg = triples_to_map(
                src.size, edge.marg_up if upward else edge.marg_down)
        new_sep = gather_marginalize(src, m_marg, edge.sep_size)
        total = float(new_sep.sum())
        if total <= 0.0:
            raise EvidenceError("evidence has zero probability (empty message)")
        new_sep /= total
        ratio = new_sep / (sep + (sep == 0.0))
        if m_abs is None:
            m_abs = triples_to_map(
                dst.size, edge.absorb_up if upward else edge.absorb_down)
        gather_absorb(dst, ratio, m_abs)
        sep[:] = new_sep
        return math.log(total)

    def message_batch(self, src, dst, sep, edge, upward, maps=(None, None),
                      case_offset=0):
        m_marg, m_abs = maps
        if m_marg is None:
            m_marg = triples_to_map(
                src.shape[1], edge.marg_up if upward else edge.marg_down)
        new_sep = gather_marginalize_batch(src, m_marg, edge.sep_size)
        log_totals = _normalize_batch(new_sep, case_offset)
        ratio = new_sep / (sep + (sep == 0.0))
        if m_abs is None:
            m_abs = triples_to_map(
                dst.shape[1], edge.absorb_up if upward else edge.absorb_down)
        gather_absorb_batch(dst, ratio, m_abs)
        sep[:] = new_sep
        return log_totals


def _make_native() -> KernelBackend:
    """Build the native backend, degrading to ``fused`` when it can't.

    The fallback returns the *fused singleton itself*, so ``engine.
    kernels.name`` (surfaced by ``info``/``stats``/trace spans) reports
    the backend actually executing messages, never the one requested.
    """
    from repro.exec.native import load_native_kernels

    backend, reason = load_native_kernels()
    if backend is None:
        logger.warning(
            "native kernel backend unavailable (%s); falling back to fused",
            reason)
        return get_kernels("fused")
    return backend


#: The pluggable backend registry: name -> zero-arg factory.  Instances
#: are built lazily (``native`` compiles a C library on first use) and
#: cached per process in ``_INSTANCES``.
_FACTORIES = {
    "fused": FusedKernels,
    "numpy": NumpyKernels,
    "native": _make_native,
}
_INSTANCES: dict[str, KernelBackend] = {}

#: Selectable backend names (CLI/service ``--kernels`` values) — derived
#: from the registry so the advertised and resolvable names never drift.
KERNELS = tuple(_FACTORIES)


def get_kernels(name: str) -> KernelBackend:
    """Resolve a kernel-backend name from the registry (lazily built).

    ``"native"`` resolves to the fused singleton (with a logged reason)
    when no C compiler is available — callers always get a working
    backend whose ``.name`` states what actually runs.
    """
    backend = _INSTANCES.get(name)
    if backend is None:
        try:
            factory = _FACTORIES[name]
        except KeyError:
            known = ", ".join(sorted(_FACTORIES))
            raise BackendError(
                f"unknown kernel backend {name!r}; available backends: {known}"
            ) from None
        backend = _INSTANCES[name] = factory()
    return backend


def run_message_schedule(plan, state, backend: KernelBackend,
                         map_limit: int | None = None, hooks=None) -> int:
    """Full two-phase calibration of ``state`` via ``backend``.

    The single-case execution loop shared by the sequential engine: walks
    the compiled plan's collect layers (tracking the normalisation
    constants in ``state.log_norm``) then its distribute layers (constants
    dropped), one :meth:`KernelBackend.message` per edge per phase.
    Returns the number of messages executed.

    ``hooks`` (or, when absent, the thread's recorder installed by
    :func:`repro.obs.trace.install_kernel_hooks`) receives per-message
    timings plus an end-of-run summary (backend name, message count,
    arena bytes) — how a sampled request's trace sees inside the kernel
    layer.  With no recorder active the loop is untouched: one
    thread-local read per call.
    """
    if hooks is None:
        hooks = current_kernel_hooks()
    if hooks is None and getattr(backend, "compiles_schedule", False):
        # Schedule-compiling backends (native) run the whole calibration
        # as one GIL-free foreign call when nothing needs per-message
        # visibility; None means this plan/state can't take the fast path.
        done = backend.run_schedule(plan, state, map_limit)
        if done is not None:
            messages, log_norm = done
            state.log_norm += log_norm
            return messages
    spec = plan.spec
    cliques = [p.values for p in state.clique_pot]
    seps = [p.values for p in state.sep_pot]
    messages = 0
    log_norm = 0.0
    send = backend.message
    timer = time.perf_counter
    run_start = timer() if hooks is not None else 0.0
    if hooks is not None:
        def send(*args, _send=backend.message):  # noqa: F811
            t0 = timer()
            out = _send(*args)
            hooks.on_message(args[4], timer() - t0)
            return out

    if backend.wants_maps:
        # Map-consuming backends run the pre-compiled sequence: maps
        # prefetched, zero per-message plan lookups.  Skip-consuming
        # backends (native) additionally get each endpoint's nonzero-run
        # list so structurally-zero blocks of the base tables cost nothing.
        skips = (plan.zero_skip_runs()
                 if getattr(backend, "wants_skips", False) else None)
        for upward, src, dst, sep_id, edge, m_marg, m_abs in \
                plan.compiled_messages(limit=map_limit):
            if skips is None:
                log_total = send(cliques[src], cliques[dst], seps[sep_id],
                                 edge, upward, (m_marg, m_abs))
            else:
                log_total = send(cliques[src], cliques[dst], seps[sep_id],
                                 edge, upward, (m_marg, m_abs),
                                 (skips[src], skips[dst]))
            if upward:
                log_norm += log_total
            messages += 1
    else:
        no_maps = (None, None)
        for layer in spec.up_layers:
            for cid in layer:
                edge = spec.edges[cid]
                log_norm += send(cliques[cid], cliques[edge.parent],
                                 seps[edge.sep_id], edge, True, no_maps)
                messages += 1
        for layer in spec.down_layers:
            for cid in layer:
                edge = spec.edges[cid]
                send(cliques[edge.parent], cliques[cid],
                     seps[edge.sep_id], edge, False, no_maps)
                messages += 1
    state.log_norm += log_norm
    if hooks is not None:
        hooks.on_schedule(backend=backend.name, messages=messages,
                          seconds=timer() - run_start,
                          arena_bytes=getattr(plan, "arena_bytes", None))
    return messages


def calibrate_states(plan, states, backend: KernelBackend,
                     workers: int = 1, map_limit: int | None = None) -> int:
    """Calibrate many independent single-case states, optionally threaded.

    The thread-dispatch path for per-case calibration: states are split
    into one contiguous chunk per worker and each chunk calibrates on its
    own thread.  Schedule-compiling backends (``native``) run each chunk
    as **one GIL-free foreign call** (:meth:`NativeKernels.run_schedules`),
    so chunks genuinely overlap on separate cores — the granularity at
    which ``parallel=thread`` dispatch finally scales.  Other backends
    loop :func:`run_message_schedule` per state (threads then only help
    as far as NumPy internally drops the GIL).

    Updates each state's tables and ``log_norm`` in place; returns the
    total number of messages executed.
    """
    states = list(states)
    if not states:
        return 0

    def run_chunk(chunk) -> int:
        if getattr(backend, "compiles_schedule", False):
            per_state = backend.run_schedules(plan, chunk, map_limit)
            if per_state is not None:
                return per_state * len(chunk)
        sent = 0
        for state in chunk:
            sent += run_message_schedule(plan, state, backend,
                                         map_limit=map_limit)
        return sent

    workers = max(1, min(workers, len(states)))
    if workers == 1:
        return run_chunk(states)
    bounds = [(len(states) * w // workers, len(states) * (w + 1) // workers)
              for w in range(workers)]
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(run_chunk, states[lo:hi])
                   for lo, hi in bounds if hi > lo]
        return sum(f.result() for f in futures)
