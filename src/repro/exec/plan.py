"""Compile-once message plans: one arena, one geometry, every engine.

A junction tree plus a BFS layer schedule fully determines everything a
calibration pass ever computes *about* tables (as opposed to *in* them):
which clique messages which, through which separator, in which order, and
the index geometry of each table operation.  :func:`compile_plan` derives
all of it exactly once per (tree, root) and the engines share the result:

* a flat **arena layout** — every clique and separator table gets an
  offset into one contiguous float64 buffer, in both the single-case
  (``(arena_entries,)``) and batched (``(N, table)`` blocks, table-major)
  layouts; :meth:`MessagePlan.fresh_state` / ``fresh_batch_state`` hand
  out ready-to-calibrate states whose potentials are views into it;
* per-edge :class:`EdgeGeometry` — the four stride-triple index mappings
  (the paper's formulation, chunked by the parallel engines) **and** the
  N-D sum-axes/broadcast shapes (consumed by the fused kernel backend and
  the incremental engine, which previously derived them privately);
* the **layer schedule** flattened to plain clique-id tuples
  (``up_layers`` deepest-first, ``down_layers`` shallowest-first) — the
  picklable form the batched engine ships to process workers;
* the cached **CPT-product base tables** and the per-edge **index-map
  cache**, so every engine sharing one tree shares one copy of each.

:class:`PlanSpec` is the picklable slice of the plan (pure ints/tuples,
no network or domain objects): it crosses process boundaries at the cost
of a few kilobytes, while :class:`MessagePlan` itself stays in the master
process holding the tree, the lazily-built base tables and the map cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import EvidenceError, JunctionTreeError, QueryError
from repro.exec.kernels import StrideTriples, triples_to_map
from repro.jt.layers import LayerSchedule, compute_layers
from repro.jt.structure import BatchTreeState, JunctionTree, TreeState
from repro.potential.domain import Domain
from repro.potential.factor import Potential


def stride_triples(src: Domain, dst: Domain) -> StrideTriples:
    """Stride triples describing the src→dst flat index mapping."""
    return tuple((src.stride(v), src.card(v), dst.stride(v)) for v in dst.variables)


@dataclass(frozen=True)
class EdgeGeometry:
    """Precomputed index geometry for one tree edge (child ↔ parent).

    Carries both formulations of every message the edge ever sends:
    stride triples for the index-mapping (gather/scatter) kernels, and
    sum-axes/broadcast shapes for the N-D-view (fused) kernels.  The
    broadcast shapes are valid because clique and separator domains are
    both ordered by network variable rank, making the separator's variable
    order a sub-order of both endpoints'.  Pure ints and tuples —
    picklable, shareable, immutable.
    """

    child: int
    parent: int
    sep_id: int
    sep_size: int
    #: collect: marginalize child clique → separator
    marg_up: StrideTriples
    #: collect: absorb ratio into parent (gather parent idx → sep idx)
    absorb_up: StrideTriples
    #: distribute: marginalize parent clique → separator
    marg_down: StrideTriples
    #: distribute: absorb ratio into child
    absorb_down: StrideTriples
    #: N-D shapes of the endpoint cliques (domain order = var-rank order)
    child_shape: tuple[int, ...]
    parent_shape: tuple[int, ...]
    #: axes of the child's N-D view summed out for child → sep
    up_axes: tuple[int, ...]
    #: axes of the parent's N-D view summed out for parent → sep
    down_axes: tuple[int, ...]
    #: separator reshaped to broadcast against the child's N-D view
    child_bshape: tuple[int, ...]
    #: separator reshaped to broadcast against the parent's N-D view
    parent_bshape: tuple[int, ...]


@dataclass(frozen=True)
class PlanSpec:
    """The picklable message plan: geometry + schedule + arena layout.

    Everything a worker needs to calibrate arena tables — no tree, no
    network, no domain objects.  Offsets are in float64 entries; the
    single-case arena packs cliques first then separators, and the batched
    arena uses the same offsets scaled by the case count (table-major
    ``(N, size)`` blocks).
    """

    root: int
    clique_sizes: tuple[int, ...]
    clique_shapes: tuple[tuple[int, ...], ...]
    sep_sizes: tuple[int, ...]
    #: arena offset of each clique table
    clique_offsets: tuple[int, ...]
    #: arena offset of each separator table (absolute, after the cliques)
    sep_offsets: tuple[int, ...]
    #: total clique entries (= offset of the first separator)
    clique_entries: int
    #: total arena entries (cliques + separators)
    arena_entries: int
    #: per-edge geometry keyed by child clique id
    edges: dict[int, EdgeGeometry]
    #: collect schedule: clique ids per BFS layer, deepest layer first
    up_layers: tuple[tuple[int, ...], ...]
    #: distribute schedule: clique ids per BFS layer, shallowest first
    down_layers: tuple[tuple[int, ...], ...]

    @property
    def num_cliques(self) -> int:
        return len(self.clique_sizes)

    @property
    def num_separators(self) -> int:
        return len(self.sep_sizes)

    @property
    def num_messages(self) -> int:
        """Messages per full calibration (one up + one down per edge)."""
        return 2 * len(self.edges)


class MessagePlan:
    """A compiled plan bound to its tree (see the module docstring).

    Do not construct directly — :func:`compile_plan` caches one instance
    per (tree object, root), so every engine compiled over one tree shares
    the base tables and the index-map cache.
    """

    #: Stop materialising maps past this many cached int64 entries (~400 MB).
    MAP_CACHE_LIMIT = 50_000_000

    def __init__(self, tree: JunctionTree, schedule: LayerSchedule) -> None:
        if schedule.root != tree.root:
            raise JunctionTreeError(
                f"schedule rooted at {schedule.root} does not match tree "
                f"root {tree.root}"
            )
        self.tree = tree
        self.schedule = schedule

        clique_sizes = tuple(c.size for c in tree.cliques)
        clique_shapes = tuple(
            tuple(v.cardinality for v in c.domain.variables) for c in tree.cliques
        )
        sep_sizes = tuple(s.size for s in tree.separators)
        clique_offsets: list[int] = []
        off = 0
        for size in clique_sizes:
            clique_offsets.append(off)
            off += size
        clique_entries = off
        sep_offsets: list[int] = []
        for size in sep_sizes:
            sep_offsets.append(off)
            off += size

        edges: dict[int, EdgeGeometry] = {}
        for cid in range(tree.num_cliques):
            parent = tree.parent[cid]
            if parent < 0:
                continue
            sep = tree.separators[tree.parent_sep[cid]]
            cdom, pdom = tree.cliques[cid].domain, tree.cliques[parent].domain
            sep_names = set(sep.domain.names)
            edges[cid] = EdgeGeometry(
                child=cid,
                parent=parent,
                sep_id=sep.id,
                sep_size=sep.domain.size,
                marg_up=stride_triples(cdom, sep.domain),
                absorb_up=stride_triples(pdom, sep.domain),
                marg_down=stride_triples(pdom, sep.domain),
                absorb_down=stride_triples(cdom, sep.domain),
                child_shape=clique_shapes[cid],
                parent_shape=clique_shapes[parent],
                up_axes=tuple(i for i, v in enumerate(cdom.variables)
                              if v.name not in sep_names),
                down_axes=tuple(i for i, v in enumerate(pdom.variables)
                                if v.name not in sep_names),
                child_bshape=tuple(v.cardinality if v.name in sep_names else 1
                                   for v in cdom.variables),
                parent_bshape=tuple(v.cardinality if v.name in sep_names else 1
                                    for v in pdom.variables),
            )

        layers = schedule.clique_layers
        self.spec = PlanSpec(
            root=tree.root,
            clique_sizes=clique_sizes,
            clique_shapes=clique_shapes,
            sep_sizes=sep_sizes,
            clique_offsets=tuple(clique_offsets),
            sep_offsets=tuple(sep_offsets),
            clique_entries=clique_entries,
            arena_entries=off,
            edges=edges,
            up_layers=tuple(layers[d] for d in range(len(layers) - 1, 0, -1)),
            down_layers=tuple(layers[d] for d in range(1, len(layers))),
        )
        #: Lazily-built CPT-product clique tables (views into one flat base).
        self._base: list[np.ndarray] | None = None
        self._base_flat: np.ndarray | None = None
        #: Per-(clique, separator) index-map cache; the same map serves the
        #: marginalize and absorb directions of that edge.
        self._maps: dict[tuple[int, int], np.ndarray] = {}
        self._map_entries = 0
        #: Pre-compiled message sequence with maps attached (lazy).
        self._compiled: list[tuple] | None = None
        #: Per-clique nonzero-run skip lists over the base tables (lazy).
        self._zero_runs: list[np.ndarray | None] | None = None
        self._zero_skipped = 0
        #: Evidence geometry: variable name -> (absorbing clique id,
        #: cached per-entry digit vector of that variable in the clique).
        self._ev_digits: dict[str, tuple[int, np.ndarray]] = {}
        #: Posterior geometry: variable name -> (clique id, summed axes).
        self._var_reads: dict[str, tuple[int, tuple[int, ...]]] = {}

    # ----------------------------------------------------------------- layout
    @property
    def arena_bytes(self) -> int:
        """Single-case arena footprint in bytes (float64 entries × 8)."""
        return 8 * self.spec.arena_entries

    @property
    def base_cliques(self) -> list[np.ndarray]:
        """CPT-product clique tables, built once and shared (views of one
        flat buffer laid out exactly like the arena's clique region)."""
        if self._base is None:
            state = TreeState(self.tree)
            flat = np.empty(self.spec.clique_entries)
            base: list[np.ndarray] = []
            for cid, pot in enumerate(state.clique_pot):
                off = self.spec.clique_offsets[cid]
                view = flat[off:off + pot.size]
                view[:] = pot.values
                base.append(view)
            self._base_flat = flat
            self._base = base
        return self._base

    def adopt_base(self, flat: np.ndarray) -> None:
        """Adopt an externally-owned flat base buffer (shared memory).

        Cluster workers publish each plan's CPT-product clique tables
        into one named shared-memory segment (:func:`repro.parallel.
        sharedmem.share_readonly`) so model replicas across processes
        map the *same physical pages* instead of duplicating them.  The
        buffer is only ever a copy *source* (``fresh_state`` copies it
        into a private arena), so a read-only view is safe to adopt.
        """
        if flat.shape != (self.spec.clique_entries,):
            raise ValueError(
                f"adopted base has shape {flat.shape}, plan needs "
                f"({self.spec.clique_entries},)")
        base: list[np.ndarray] = []
        for cid, clique in enumerate(self.tree.cliques):
            off = self.spec.clique_offsets[cid]
            base.append(flat[off:off + clique.size])
        self._base_flat = flat
        self._base = base

    def fresh_state(self) -> TreeState:
        """A calibration-ready :class:`TreeState` backed by one arena.

        Clique tables start at the cached CPT products (one contiguous
        copy, not one CPT multiply per clique per inference) and
        separators at ones; every potential's values are views into a
        single ``(arena_entries,)`` buffer.
        """
        spec = self.spec
        self.base_cliques  # materialise _base_flat
        arena = np.empty(spec.arena_entries)
        arena[:spec.clique_entries] = self._base_flat
        arena[spec.clique_entries:] = 1.0
        state = TreeState.__new__(TreeState)
        state.tree = self.tree
        state.clique_pot = [
            Potential(c.domain,
                      arena[spec.clique_offsets[c.id]:
                            spec.clique_offsets[c.id] + c.size])
            for c in self.tree.cliques
        ]
        state.sep_pot = [
            Potential(s.domain,
                      arena[spec.sep_offsets[s.id]:
                            spec.sep_offsets[s.id] + s.size])
            for s in self.tree.separators
        ]
        state.log_norm = 0.0
        return state

    def fresh_batch_state(self, n: int) -> BatchTreeState:
        """A :class:`BatchTreeState` for ``n`` cases backed by one arena.

        Table-major layout: table *t* occupies the contiguous
        ``(n, size_t)`` block at ``n * offset_t`` — the same shape the
        shared-memory arena uses on the process backend, so case-block
        kernels address both identically.
        """
        if n < 1:
            raise JunctionTreeError(f"batch needs at least one case, got {n}")
        spec = self.spec
        base = self.base_cliques
        buf = np.empty(n * spec.arena_entries)
        state = BatchTreeState.__new__(BatchTreeState)
        state.tree = self.tree
        state.n = n
        clique_pot: list[np.ndarray] = []
        for cid, size in enumerate(spec.clique_sizes):
            off = n * spec.clique_offsets[cid]
            view = buf[off:off + n * size].reshape(n, size)
            view[:] = base[cid]
            clique_pot.append(view)
        sep_pot: list[np.ndarray] = []
        for sid, size in enumerate(spec.sep_sizes):
            off = n * spec.sep_offsets[sid]
            view = buf[off:off + n * size].reshape(n, size)
            view.fill(1.0)
            sep_pot.append(view)
        state.clique_pot = clique_pot
        state.sep_pot = sep_pot
        state.log_norm = np.zeros(n)
        return state

    # ------------------------------------------------------------- index maps
    def index_map(self, clique_id: int, sep_id: int, size: int,
                  triples: StrideTriples,
                  limit: int | None = None) -> np.ndarray | None:
        """Cached clique→separator flat index map, or ``None`` over budget.

        The mapping depends only on table shapes — never on evidence — so
        one map per (clique, separator) pair serves both message
        directions of that edge forever.
        """
        key = (clique_id, sep_id)
        cached = self._maps.get(key)
        if cached is not None:
            return cached
        cap = self.MAP_CACHE_LIMIT if limit is None else limit
        if self._map_entries + size > cap:
            return None
        imap = triples_to_map(size, triples)
        self._maps[key] = imap
        self._map_entries += size
        return imap

    def message_maps(self, edge: EdgeGeometry, upward: bool,
                     limit: int | None = None
                     ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """The (marginalize, absorb) maps for one message direction."""
        child_map = self.index_map(
            edge.child, edge.sep_id,
            self.spec.clique_sizes[edge.child], edge.marg_up, limit)
        parent_map = self.index_map(
            edge.parent, edge.sep_id,
            self.spec.clique_sizes[edge.parent], edge.absorb_up, limit)
        return (child_map, parent_map) if upward else (parent_map, child_map)

    # -------------------------------------------------------- evidence/queries
    def evidence_digits(self, name: str) -> tuple[int, np.ndarray]:
        """``(absorbing clique id, per-entry digit vector)`` for a variable.

        The digit vector gives each entry of the absorbing clique's table
        the state index of ``name`` in that entry — evidence absorption is
        then one compare + one multiply, with the mixed-radix arithmetic
        paid once per (variable, tree) instead of once per inference.
        """
        cached = self._ev_digits.get(name)
        if cached is None:
            cid = self.tree.smallest_clique_with(name)
            dom = self.tree.cliques[cid].domain
            stride, card = dom.stride(name), dom.card(name)
            digits = (np.arange(dom.size, dtype=np.int64) // stride) % card
            cached = self._ev_digits[name] = (cid, digits)
        return cached

    def absorb_hard_evidence(self, state: TreeState,
                             evidence: dict[str, str | int]) -> None:
        """Reduce the chosen clique tables in place (zeroing mode).

        Bit-identical to :func:`repro.jt.evidence.absorb_evidence` (a 0/1
        mask multiply commutes and is exact in float64), but through the
        plan's cached digit vectors.  Raises
        :class:`~repro.errors.EvidenceError` on unknown variables/states.
        """
        from repro.jt.evidence import check_evidence

        for name, idx in check_evidence(self.tree, evidence).items():
            cid, digits = self.evidence_digits(name)
            state.clique_pot[cid].values *= digits == idx

    def absorb_evidence_batch(self, state: BatchTreeState,
                              cases: list[dict[str, str | int]]) -> None:
        """Absorb one evidence dict per case row, vectorised per variable.

        The batched analogue of :meth:`absorb_hard_evidence`: all cases
        observing a variable are zeroed together with one ``(k, table)``
        mask multiply through the cached digit vector.
        """
        from repro.jt.evidence import check_evidence

        if len(cases) != state.n:
            raise EvidenceError(
                f"batch state holds {state.n} cases but {len(cases)} "
                "evidence dicts were given"
            )
        by_var: dict[str, list[tuple[int, int]]] = {}
        for i, evidence in enumerate(cases):
            for name, idx in check_evidence(self.tree, evidence).items():
                by_var.setdefault(name, []).append((i, idx))
        for name, pairs in by_var.items():
            cid, digits = self.evidence_digits(name)
            rows = np.array([i for i, _ in pairs], dtype=np.intp)
            states = np.array([s for _, s in pairs], dtype=np.int64)
            table = state.clique_pot[cid]
            table[rows] = table[rows] * (digits[None, :] == states[:, None])

    def posterior_read(self, name: str) -> tuple[int, tuple[int, ...]]:
        """``(clique id, summed axes)`` answering ``P(name | e)`` reads."""
        cached = self._var_reads.get(name)
        if cached is None:
            if name not in self.tree.net:
                raise QueryError(f"unknown variable {name!r}")
            cid = self.tree.smallest_clique_with(name)
            dom = self.tree.cliques[cid].domain
            axes = tuple(i for i, v in enumerate(dom.variables)
                         if v.name != name)
            cached = self._var_reads[name] = (cid, axes)
        return cached

    def read_posteriors(self, state: TreeState,
                        targets: tuple[str, ...] = ()) -> dict[str, np.ndarray]:
        """Posteriors off a calibrated state through precompiled reads.

        Bit-identical to :func:`repro.jt.query.all_posteriors` (same N-D
        sums, same normalisation) without per-query domain algebra or
        Potential temporaries.
        """
        names = targets or self.tree.net.variable_names
        shapes = self.spec.clique_shapes
        out: dict[str, np.ndarray] = {}
        for name in names:
            cid, axes = self.posterior_read(name)
            values = state.clique_pot[cid].values
            marg = values.reshape(shapes[cid]).sum(axis=axes) if axes else values
            total = float(marg.sum())
            if total <= 0.0 or not math.isfinite(total):
                raise QueryError(
                    f"cannot normalise posterior of {name!r} (total={total})")
            out[name] = marg / total
        return out

    #: Don't bother skipping unless at least this fraction of a base
    #: table is zero — below it the run bookkeeping costs more than the
    #: skipped work saves.
    ZERO_SKIP_MIN_FRAC = 1 / 16

    def zero_skip_runs(self) -> list[np.ndarray | None]:
        """Per-clique nonzero-run lists over the CPT-product base tables.

        Entry *cid* is a flat int64 array of ``[start, end)`` pairs
        covering the nonzero stretches of clique *cid*'s base table, or
        ``None`` when the table is (nearly) dense.  Zeros in the base are
        *structural*: calibration only ever multiplies clique tables
        after initialisation (evidence masks, absorb ratios), so a base
        zero contributes nothing to any marginal and stays zero under
        every absorb — both directions of a message may skip it.
        Deterministic-CPT networks (asia's ``either``, the noisy grids)
        have such zeros in bulk; skip-consuming kernel backends
        (``native``) do proportionally less work there.
        """
        if self._zero_runs is None:
            runs_per: list[np.ndarray | None] = []
            skipped = 0
            for base in self.base_cliques:
                nonzero = base != 0.0
                n_zero = base.size - int(np.count_nonzero(nonzero))
                if n_zero < base.size * self.ZERO_SKIP_MIN_FRAC:
                    runs_per.append(None)
                    continue
                padded = np.zeros(base.size + 2, dtype=bool)
                padded[1:-1] = nonzero
                bounds = np.flatnonzero(padded[1:] != padded[:-1])
                runs_per.append(np.ascontiguousarray(bounds, dtype=np.int64))
                skipped += n_zero
            self._zero_runs = runs_per
            self._zero_skipped = skipped
        return self._zero_runs

    def compiled_messages(self, limit: int | None = None) -> list[tuple]:
        """The full calibration as a flat, map-prefetched message sequence.

        One ``(upward, src, dst, sep_id, edge, marg_map, absorb_map)``
        tuple per message, collect phase first (deepest layer inward) then
        distribute (root outward).  Built once per plan: the hot loop of a
        map-consuming kernel backend then runs with zero per-message plan
        lookups — the compile-once counterpart of the paper's "only touch
        table values at inference time".
        """
        if self._compiled is None:
            spec = self.spec
            seq: list[tuple] = []
            for layer in spec.up_layers:
                for cid in layer:
                    edge = spec.edges[cid]
                    m_marg, m_abs = self.message_maps(edge, True, limit)
                    seq.append((True, cid, edge.parent, edge.sep_id, edge,
                                m_marg, m_abs))
            for layer in spec.down_layers:
                for cid in layer:
                    edge = spec.edges[cid]
                    m_marg, m_abs = self.message_maps(edge, False, limit)
                    seq.append((False, edge.parent, cid, edge.sep_id, edge,
                                m_marg, m_abs))
            self._compiled = seq
        return self._compiled

    def stats(self) -> dict[str, float]:
        """Plan-level statistics (surfaced by ``info``/CLI)."""
        return {
            "plan_arena_bytes": float(self.arena_bytes),
            "plan_messages": float(self.spec.num_messages),
            "plan_map_entries": float(self._map_entries),
            "plan_zero_skipped_entries": float(self._zero_skipped),
        }


def compile_plan(tree: JunctionTree,
                 schedule: LayerSchedule | None = None) -> MessagePlan:
    """The shared :class:`MessagePlan` for ``tree`` under its current root.

    Cached on the tree object keyed by root, so engines compiled over one
    tree (warm starts, the service registry's cache states, incremental
    engines) share one plan — one set of base tables, one map cache.
    """
    cache: dict[int, MessagePlan] = tree.__dict__.setdefault("_exec_plans", {})
    plan = cache.get(tree.root)
    if plan is None:
        plan = MessagePlan(tree, schedule if schedule is not None
                           else compute_layers(tree))
        cache[tree.root] = plan
    return plan
