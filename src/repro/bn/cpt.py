"""Conditional probability tables.

A :class:`CPT` stores ``P(child | parents)`` as a dense ``float64`` array of
shape ``(card(p1), ..., card(pk), card(child))`` — parents first in the given
order, child axis last.  This layout makes each conditional distribution a
contiguous row (cache-friendly per the HPC guide) and converts directly into
a :class:`repro.potential.factor.Potential` over ``parents + (child,)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bn.variable import Variable
from repro.errors import CPTError

#: Tolerance used when validating that conditional rows sum to one.
ROW_SUM_ATOL = 1e-8


@dataclass(frozen=True)
class CPT:
    """An immutable conditional probability table ``P(child | parents)``."""

    child: Variable
    parents: tuple[Variable, ...]
    table: np.ndarray

    def __post_init__(self) -> None:
        parents = tuple(self.parents)
        object.__setattr__(self, "parents", parents)
        names = [v.name for v in (*parents, self.child)]
        if len(set(names)) != len(names):
            raise CPTError(f"duplicate variables in CPT for {self.child.name!r}: {names}")
        expected = tuple(p.cardinality for p in parents) + (self.child.cardinality,)
        table = np.ascontiguousarray(np.asarray(self.table, dtype=np.float64))
        if table.shape != expected:
            raise CPTError(
                f"CPT for {self.child.name!r} has shape {table.shape}, "
                f"expected {expected} (parents {[p.name for p in parents]})"
            )
        if np.any(table < 0) or not np.all(np.isfinite(table)):
            raise CPTError(f"CPT for {self.child.name!r} has negative or non-finite entries")
        sums = table.sum(axis=-1)
        if not np.allclose(sums, 1.0, atol=ROW_SUM_ATOL):
            worst = float(np.abs(sums - 1.0).max())
            raise CPTError(
                f"CPT rows for {self.child.name!r} must sum to 1 "
                f"(max deviation {worst:.3e})"
            )
        table.setflags(write=False)
        object.__setattr__(self, "table", table)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """The CPT's scope, parents first, child last (potential order)."""
        return (*self.parents, self.child)

    @property
    def size(self) -> int:
        """Number of entries in the dense table."""
        return int(self.table.size)

    def prob(self, child_state: str | int, parent_states: dict[str, str | int] | None = None) -> float:
        """Look up ``P(child = child_state | parents = parent_states)``."""
        parent_states = parent_states or {}
        idx: list[int] = []
        for p in self.parents:
            if p.name not in parent_states:
                raise CPTError(f"missing parent state for {p.name!r}")
            idx.append(p.state_index(parent_states[p.name]))
        idx.append(self.child.state_index(child_state))
        return float(self.table[tuple(idx)])

    @classmethod
    def uniform(cls, child: Variable, parents: tuple[Variable, ...] = ()) -> "CPT":
        """A CPT where every conditional distribution is uniform."""
        shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
        return cls(child, parents, np.full(shape, 1.0 / child.cardinality))

    @classmethod
    def random(
        cls,
        child: Variable,
        parents: tuple[Variable, ...] = (),
        rng: np.random.Generator | None = None,
        concentration: float = 1.0,
    ) -> "CPT":
        """Draw each conditional row from a symmetric Dirichlet.

        ``concentration < 1`` yields peaked (near-deterministic) rows, which
        mimics the skewed CPTs of real diagnostic networks; ``1.0`` is
        uniform over the simplex.
        """
        if rng is None:
            rng = np.random.default_rng()
        if concentration <= 0:
            raise CPTError(f"concentration must be positive, got {concentration}")
        shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
        rows = rng.gamma(concentration, size=shape)
        # Guard against an all-zero row from underflow with tiny concentration.
        rows = np.maximum(rows, 1e-12)
        rows /= rows.sum(axis=-1, keepdims=True)
        return cls(child, parents, rows)

    def renormalized(self) -> "CPT":
        """Return a copy with rows renormalised (repairs drift after edits)."""
        t = np.array(self.table, dtype=np.float64)
        t /= t.sum(axis=-1, keepdims=True)
        return CPT(self.child, self.parents, t)
