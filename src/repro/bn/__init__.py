"""Discrete Bayesian-network substrate.

This subpackage provides everything the inference engines need below the
junction-tree level: variables and CPTs (:mod:`repro.bn.variable`,
:mod:`repro.bn.cpt`), the network container (:mod:`repro.bn.network`),
file I/O (:mod:`repro.bn.io_bif`, :mod:`repro.bn.io_net`), forward sampling
and evidence generation (:mod:`repro.bn.sampling`), random-network
generators (:mod:`repro.bn.generators`) and the registry of the paper's six
evaluation networks as structure-matched synthetic analogs
(:mod:`repro.bn.repository`).
"""

from repro.bn.cpt import CPT
from repro.bn.network import BayesianNetwork
from repro.bn.variable import Variable

__all__ = ["Variable", "CPT", "BayesianNetwork"]
