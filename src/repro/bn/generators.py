"""Random Bayesian-network generators.

Used for (a) property-based testing (small random nets compared against
brute-force oracles) and (b) building the structure-matched synthetic
analogs of the paper's six bnlearn networks (:mod:`repro.bn.repository`).

The core generator draws a DAG in a fixed topological order where each node
chooses parents from a bounded *window* of recent predecessors.  Windowed
locality mirrors how the large bnlearn networks are actually built (Munin /
Diabetes / Pigs repeat local anatomical templates) and, critically, bounds
the induced treewidth, keeping junction-tree inference feasible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bn.cpt import CPT
from repro.bn.network import BayesianNetwork
from repro.bn.variable import Variable
from repro.errors import NetworkError
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class StateDistribution:
    """Discrete distribution over variable cardinalities.

    ``choices`` are the possible state counts, ``weights`` their relative
    frequencies (normalised internally).
    """

    choices: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.choices) != len(self.weights) or not self.choices:
            raise NetworkError("state distribution needs matching, non-empty choices/weights")
        if any(c < 2 for c in self.choices):
            raise NetworkError("variable cardinalities must be >= 2")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise NetworkError("weights must be non-negative and not all zero")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        p = np.asarray(self.weights, dtype=float)
        p /= p.sum()
        return rng.choice(np.asarray(self.choices), size=n, p=p)

    def capped(self, cap: int) -> "StateDistribution":
        """Clip all cardinalities to ``cap`` (the repository's scale knob)."""
        if cap < 2:
            raise NetworkError(f"state cap must be >= 2, got {cap}")
        merged: dict[int, float] = {}
        for c, w in zip(self.choices, self.weights):
            c2 = min(c, cap)
            merged[c2] = merged.get(c2, 0.0) + w
        items = sorted(merged.items())
        return StateDistribution(tuple(c for c, _ in items), tuple(w for _, w in items))

    @classmethod
    def constant(cls, card: int) -> "StateDistribution":
        return cls((card,), (1.0,))


def random_dag_edges(
    n: int,
    avg_parents: float,
    max_in_degree: int,
    window: int,
    rng: np.random.Generator,
) -> list[list[int]]:
    """Parent lists for a windowed random DAG over nodes ``0 .. n-1``.

    Node *i* draws ``min(Binomial-ish, max_in_degree)`` parents uniformly
    from ``{max(0, i-window), ..., i-1}``.  The expected parent count is
    ``avg_parents`` (truncated at both the window and ``max_in_degree``).
    """
    if n < 1:
        raise NetworkError(f"need at least one node, got {n}")
    if max_in_degree < 0 or window < 1 or avg_parents < 0:
        raise NetworkError("invalid DAG generator parameters")
    parents: list[list[int]] = []
    for i in range(n):
        lo = max(0, i - window)
        avail = i - lo
        cap = min(max_in_degree, avail)
        if cap == 0:
            parents.append([])
            continue
        lam = min(avg_parents, cap)
        k = int(min(cap, rng.poisson(lam)))
        if k == 0 and rng.random() < min(1.0, avg_parents):
            k = 1  # bias against isolated nodes so analogs stay connected
        chosen = rng.choice(avail, size=k, replace=False) + lo if k else np.array([], dtype=int)
        parents.append(sorted(int(c) for c in chosen))
    return parents


def random_network(
    n: int,
    state_dist: StateDistribution | int = 2,
    avg_parents: float = 1.5,
    max_in_degree: int = 3,
    window: int = 12,
    concentration: float = 1.0,
    name: str = "random",
    rng: np.random.Generator | int | None = None,
) -> BayesianNetwork:
    """Generate a random discrete Bayesian network.

    Deterministic for a fixed integer seed.  ``concentration`` controls CPT
    skew (see :meth:`repro.bn.cpt.CPT.random`).
    """
    rng = as_rng(rng)
    if isinstance(state_dist, int):
        state_dist = StateDistribution.constant(state_dist)
    cards = state_dist.sample(rng, n)
    variables = [Variable.with_arity(f"n{i:04d}", int(c)) for i, c in enumerate(cards)]
    parent_lists = random_dag_edges(n, avg_parents, max_in_degree, window, rng)
    net = BayesianNetwork(name)
    for v in variables:
        net.add_variable(v)
    for i, plist in enumerate(parent_lists):
        ps = tuple(variables[j] for j in plist)
        net.add_cpt(CPT.random(variables[i], ps, rng=rng, concentration=concentration))
    return net.validate()


def chain_network(
    n: int,
    card: int = 2,
    name: str = "chain",
    rng: np.random.Generator | int | None = None,
) -> BayesianNetwork:
    """A Markov chain ``X0 → X1 → ... → X{n-1}``.

    Its junction tree is a path of n−1 two-variable cliques — the worst
    case for inter-clique parallelism (every layer has one clique), used by
    the granularity ablation.
    """
    rng = as_rng(rng)
    variables = [Variable.with_arity(f"x{i:04d}", card) for i in range(n)]
    net = BayesianNetwork(name)
    for v in variables:
        net.add_variable(v)
    net.add_cpt(CPT.random(variables[0], (), rng=rng))
    for i in range(1, n):
        net.add_cpt(CPT.random(variables[i], (variables[i - 1],), rng=rng))
    return net.validate()


def star_network(
    n_leaves: int,
    card: int = 2,
    hub_card: int | None = None,
    name: str = "star",
    rng: np.random.Generator | int | None = None,
) -> BayesianNetwork:
    """A naive-Bayes star: one hub with ``n_leaves`` children.

    Its junction tree is maximally shallow (all cliques share the hub, two
    layers) — the best case for inter-clique parallelism.
    """
    rng = as_rng(rng)
    hub = Variable.with_arity("hub", hub_card or card)
    leaves = [Variable.with_arity(f"leaf{i:04d}", card) for i in range(n_leaves)]
    net = BayesianNetwork(name)
    net.add_variable(hub)
    for v in leaves:
        net.add_variable(v)
    net.add_cpt(CPT.random(hub, (), rng=rng))
    for v in leaves:
        net.add_cpt(CPT.random(v, (hub,), rng=rng))
    return net.validate()


def balanced_tree_network(
    depth: int,
    branching: int = 2,
    card: int = 2,
    name: str = "tree",
    rng: np.random.Generator | int | None = None,
) -> BayesianNetwork:
    """A complete directed tree of the given depth and branching factor."""
    if depth < 0 or branching < 1:
        raise NetworkError("depth must be >= 0 and branching >= 1")
    rng = as_rng(rng)
    net = BayesianNetwork(name)
    root = Variable.with_arity("t", card)
    net.add_variable(root)
    net.add_cpt(CPT.random(root, (), rng=rng))
    frontier = [root]
    counter = 0
    for _ in range(depth):
        nxt: list[Variable] = []
        for parent in frontier:
            for _ in range(branching):
                child = Variable.with_arity(f"t{counter:05d}", card)
                counter += 1
                net.add_variable(child)
                net.add_cpt(CPT.random(child, (parent,), rng=rng))
                nxt.append(child)
        frontier = nxt
    return net.validate()


def grid_network(
    rows: int,
    cols: int,
    card: int = 2,
    name: str = "grid",
    rng: np.random.Generator | int | None = None,
) -> BayesianNetwork:
    """A rows×cols lattice DAG (edges right and down).

    Grids have treewidth ``min(rows, cols)`` — a controlled way to grow
    clique sizes for the intra-clique benchmarks.
    """
    rng = as_rng(rng)
    net = BayesianNetwork(name)
    grid: list[list[Variable]] = []
    for r in range(rows):
        row: list[Variable] = []
        for c in range(cols):
            v = Variable.with_arity(f"g{r:03d}_{c:03d}", card)
            net.add_variable(v)
            row.append(v)
        grid.append(row)
    for r in range(rows):
        for c in range(cols):
            parents: list[Variable] = []
            if r > 0:
                parents.append(grid[r - 1][c])
            if c > 0:
                parents.append(grid[r][c - 1])
            net.add_cpt(CPT.random(grid[r][c], tuple(parents), rng=rng))
    return net.validate()
