"""Discrete random variables.

A :class:`Variable` is an immutable (name, states) pair.  Within one network
names are unique, and all bookkeeping (CPTs, cliques, potentials) refers to
variables by these objects.  Equality and hashing use both name and state
list so that two networks can safely share variable objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetworkError


@dataclass(frozen=True)
class Variable:
    """A named discrete random variable with an ordered list of states.

    Parameters
    ----------
    name:
        Unique identifier within a network.
    states:
        Ordered state labels; ``cardinality == len(states)`` and state *i*
        corresponds to index *i* in every potential-table axis for this
        variable.
    """

    name: str
    states: tuple[str, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.name:
            raise NetworkError("variable name must be non-empty")
        states = tuple(str(s) for s in self.states)
        if len(states) < 1:
            raise NetworkError(f"variable {self.name!r} needs at least one state")
        if len(set(states)) != len(states):
            raise NetworkError(f"variable {self.name!r} has duplicate states: {states}")
        object.__setattr__(self, "states", states)
        object.__setattr__(self, "_index", {s: i for i, s in enumerate(states)})

    @property
    def cardinality(self) -> int:
        """Number of states."""
        return len(self.states)

    def state_index(self, state: str | int) -> int:
        """Map a state label (or an already-valid index) to its index."""
        if isinstance(state, (int,)) and not isinstance(state, bool):
            if 0 <= state < self.cardinality:
                return int(state)
            raise NetworkError(
                f"state index {state} out of range for {self.name!r} "
                f"(cardinality {self.cardinality})"
            )
        try:
            return self._index[str(state)]
        except KeyError:
            raise NetworkError(
                f"unknown state {state!r} for variable {self.name!r}; "
                f"valid states: {self.states}"
            ) from None

    @classmethod
    def binary(cls, name: str) -> "Variable":
        """Convenience constructor for a yes/no variable."""
        return cls(name, ("no", "yes"))

    @classmethod
    def with_arity(cls, name: str, arity: int) -> "Variable":
        """A variable with ``arity`` generic states ``s0 .. s{arity-1}``."""
        if arity < 1:
            raise NetworkError(f"arity must be >= 1, got {arity}")
        return cls(name, tuple(f"s{i}" for i in range(arity)))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{self.cardinality}]"
