"""Registry of the paper's six evaluation networks as synthetic analogs.

The paper evaluates on six bnlearn-repository networks (Hailfinder,
Pathfinder, Diabetes, Pigs, Munin2, Munin4).  This environment has no
network access, so the exact ``.bif`` files cannot be fetched; instead each
entry here is a **structure-matched synthetic analog**: a deterministic
random network with the published node count, arc count, state-count
profile and max in-degree of the original (figures from the bnlearn
repository page).  JT inference cost is governed by exactly these
quantities plus induced treewidth, so the analogs preserve the *relative*
difficulty ordering of Table 1 — which is what the reproduction must match.

Two profiles per network:

* ``scale="paper"`` — full published state-count profile.  Faithful, but
  (as in the paper) the largest networks take hours in pure Python.
* ``scale="bench"`` (default) — the same graph, state counts capped so the
  whole Table-1 sweep finishes in minutes on a laptop.  The cap per
  network is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bn.generators import StateDistribution, random_network
from repro.bn.network import BayesianNetwork
from repro.errors import NetworkError


@dataclass(frozen=True)
class NetworkSpec:
    """Published structural profile of one bnlearn network."""

    name: str
    nodes: int
    arcs: int
    #: Published state-count profile (choices, weights).
    states: StateDistribution
    max_in_degree: int
    #: Parent-window locality; larger = denser moral graph = larger cliques.
    window: int
    #: State-count cap for the laptop-feasible "bench" profile.
    bench_state_cap: int
    #: Whether the paper classifies it as a large-scale network.
    large_scale: bool
    #: Deterministic seed so every build of the analog is identical.
    seed: int


#: Structural profiles from the bnlearn repository page.  The state
#: distributions approximate the published (average, maximum) state counts.
SPECS: dict[str, NetworkSpec] = {
    spec.name: spec
    for spec in (
        NetworkSpec(
            name="hailfinder",
            nodes=56, arcs=66,
            states=StateDistribution((2, 3, 4, 5, 11), (0.25, 0.35, 0.2, 0.1, 0.1)),
            max_in_degree=4, window=10, bench_state_cap=4,
            large_scale=False, seed=1001,
        ),
        NetworkSpec(
            name="pathfinder",
            nodes=109, arcs=195,
            states=StateDistribution((2, 3, 4, 5, 8, 16, 63),
                                     (0.3, 0.25, 0.2, 0.1, 0.08, 0.05, 0.02)),
            max_in_degree=5, window=8, bench_state_cap=6,
            large_scale=False, seed=1002,
        ),
        NetworkSpec(
            name="diabetes",
            nodes=413, arcs=602,
            states=StateDistribution((3, 5, 11, 17, 21), (0.1, 0.2, 0.4, 0.2, 0.1)),
            max_in_degree=2, window=7, bench_state_cap=8,
            large_scale=True, seed=1003,
        ),
        NetworkSpec(
            name="pigs",
            nodes=441, arcs=592,
            states=StateDistribution.constant(3),
            max_in_degree=2, window=18, bench_state_cap=3,
            large_scale=True, seed=1004,
        ),
        NetworkSpec(
            name="munin2",
            nodes=1003, arcs=1244,
            states=StateDistribution((2, 3, 5, 7, 21), (0.2, 0.3, 0.3, 0.15, 0.05)),
            max_in_degree=3, window=8, bench_state_cap=5,
            large_scale=True, seed=1005,
        ),
        NetworkSpec(
            name="munin4",
            nodes=1041, arcs=1397,
            states=StateDistribution((2, 3, 5, 7, 21), (0.2, 0.3, 0.3, 0.15, 0.05)),
            max_in_degree=3, window=9, bench_state_cap=5,
            large_scale=True, seed=1006,
        ),
    )
}

#: Table-1 row order.
PAPER_NETWORKS = ("hailfinder", "pathfinder", "diabetes", "pigs", "munin2", "munin4")

SCALES = ("bench", "paper")


def available_networks() -> tuple[str, ...]:
    """Names of the paper's six networks, in Table-1 row order."""
    return PAPER_NETWORKS


def network_spec(name: str) -> NetworkSpec:
    """Published structural profile for one paper network."""
    try:
        return SPECS[name]
    except KeyError:
        raise NetworkError(
            f"unknown network {name!r}; available: {sorted(SPECS)}"
        ) from None


def resolve_network(name: str) -> BayesianNetwork:
    """Load a network by bundled name, analog name, or ``.bif`` path.

    The one resolution rule shared by the CLI and the service registry:
    bundled datasets (``asia``/``cancer``/``sprinkler``) first, then the
    paper analogs (bench scale), then a filesystem path ending in ``.bif``.
    """
    from pathlib import Path

    from repro.bn import io_bif
    from repro.bn.datasets import BUNDLED, load_dataset

    if name in BUNDLED:
        return load_dataset(name)
    if name in SPECS:
        return load_network(name)
    path = Path(name)
    if path.suffix == ".bif":
        if not path.exists():
            raise NetworkError(f"BIF file {name!r} does not exist")
        return io_bif.load(path)
    raise NetworkError(
        f"unknown network {name!r}: not a bundled dataset, not a paper "
        f"analog, and not a path to a .bif file"
    )


def load_network(name: str, scale: str = "bench") -> BayesianNetwork:
    """Build the deterministic synthetic analog of a paper network.

    ``scale="paper"`` uses the full published state profile; ``"bench"``
    caps state counts at the spec's ``bench_state_cap`` (same DAG shape) so
    benchmarks stay laptop-feasible.
    """
    spec = network_spec(name)
    if scale not in SCALES:
        raise NetworkError(f"unknown scale {scale!r}; expected one of {SCALES}")
    states = spec.states if scale == "paper" else spec.states.capped(spec.bench_state_cap)
    avg_parents = spec.arcs / spec.nodes
    net = random_network(
        n=spec.nodes,
        state_dist=states,
        avg_parents=avg_parents,
        max_in_degree=spec.max_in_degree,
        window=spec.window,
        concentration=0.8,
        name=f"{name}-{scale}",
        rng=spec.seed,
    )
    return net
