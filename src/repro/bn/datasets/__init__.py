"""Bundled small real networks with published CPTs.

These are the classic textbook networks whose parameters are public:

* ``asia`` — Lauritzen & Spiegelhalter (1988) chest-clinic network;
* ``cancer`` — Korb & Nicholson's cancer network;
* ``sprinkler`` — the rain/sprinkler/wet-grass example.

They serve as ground-truth fixtures: small enough for the brute-force
oracle, real enough to exercise the BIF parser on authentic structure.
"""

from __future__ import annotations

from importlib import resources

from repro.bn import io_bif
from repro.bn.network import BayesianNetwork

BUNDLED = ("asia", "cancer", "sprinkler")


def load_dataset(name: str) -> BayesianNetwork:
    """Load a bundled network by name (see :data:`BUNDLED`)."""
    if name not in BUNDLED:
        raise KeyError(f"unknown bundled dataset {name!r}; available: {BUNDLED}")
    text = resources.files(__package__).joinpath(f"{name}.bif").read_text()
    return io_bif.loads(text)
