"""The Bayesian-network container: a DAG of variables plus one CPT per node.

:class:`BayesianNetwork` is deliberately a *builder* object — variables and
CPTs are added incrementally (as parsers and generators produce them) and
:meth:`BayesianNetwork.validate` checks global consistency (acyclicity,
full CPT coverage).  Inference engines treat a validated network as
read-only.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.bn.cpt import CPT
from repro.bn.variable import Variable
from repro.errors import NetworkError


class BayesianNetwork:
    """A discrete Bayesian network.

    The network maps each variable to its :class:`~repro.bn.cpt.CPT`; edges
    are implied by CPT parent sets.  Variable insertion order is preserved
    and used as the default iteration order everywhere, which keeps all
    downstream structures (junction trees, benchmarks) deterministic.
    """

    def __init__(self, name: str = "bn") -> None:
        self.name = name
        self._variables: dict[str, Variable] = {}
        self._cpts: dict[str, CPT] = {}

    # ------------------------------------------------------------------ build
    def add_variable(self, variable: Variable) -> Variable:
        """Register a variable; re-adding the identical variable is a no-op."""
        existing = self._variables.get(variable.name)
        if existing is not None:
            if existing != variable:
                raise NetworkError(
                    f"variable {variable.name!r} already exists with different states"
                )
            return existing
        self._variables[variable.name] = variable
        return variable

    def add_cpt(self, cpt: CPT) -> None:
        """Attach a CPT; all scope variables must already be registered."""
        for v in cpt.variables:
            known = self._variables.get(v.name)
            if known is None:
                raise NetworkError(
                    f"CPT for {cpt.child.name!r} references unknown variable {v.name!r}"
                )
            if known != v:
                raise NetworkError(
                    f"CPT for {cpt.child.name!r} uses variable {v.name!r} "
                    "with mismatched states"
                )
        if cpt.child.name in self._cpts:
            raise NetworkError(f"duplicate CPT for {cpt.child.name!r}")
        self._cpts[cpt.child.name] = cpt

    # ------------------------------------------------------------------ views
    @property
    def variables(self) -> tuple[Variable, ...]:
        """All variables in insertion order."""
        return tuple(self._variables.values())

    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(self._variables)

    def variable(self, name: str) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise NetworkError(f"unknown variable {name!r}") from None

    def cpt(self, name: str) -> CPT:
        try:
            return self._cpts[name]
        except KeyError:
            raise NetworkError(f"no CPT for variable {name!r}") from None

    @property
    def cpts(self) -> tuple[CPT, ...]:
        """CPTs in variable insertion order (only for variables that have one)."""
        return tuple(self._cpts[n] for n in self._variables if n in self._cpts)

    def parents(self, name: str) -> tuple[Variable, ...]:
        return self.cpt(name).parents

    def children(self, name: str) -> tuple[Variable, ...]:
        self.variable(name)
        return tuple(
            self._variables[c] for c, cpt in self._cpts.items()
            if any(p.name == name for p in cpt.parents)
        )

    def edges(self) -> Iterator[tuple[str, str]]:
        """Yield directed edges ``(parent, child)`` in deterministic order."""
        for child, cpt in self._cpts.items():
            for p in cpt.parents:
                yield (p.name, child)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_edges(self) -> int:
        return sum(len(c.parents) for c in self._cpts.values())

    def __contains__(self, name: object) -> bool:
        return name in self._variables

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._variables.values())

    def __len__(self) -> int:
        return len(self._variables)

    # ------------------------------------------------------------- validation
    def topological_order(self) -> list[Variable]:
        """Kahn's algorithm; raises :class:`NetworkError` on a cycle."""
        indeg = {n: 0 for n in self._variables}
        children: dict[str, list[str]] = {n: [] for n in self._variables}
        for parent, child in self.edges():
            indeg[child] += 1
            children[parent].append(child)
        queue = deque(n for n in self._variables if indeg[n] == 0)
        order: list[Variable] = []
        while queue:
            n = queue.popleft()
            order.append(self._variables[n])
            for c in children[n]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    queue.append(c)
        if len(order) != len(self._variables):
            cyclic = sorted(n for n, d in indeg.items() if d > 0)
            raise NetworkError(f"network contains a directed cycle through {cyclic}")
        return order

    def validate(self) -> "BayesianNetwork":
        """Check acyclicity and that every variable has exactly one CPT."""
        missing = [n for n in self._variables if n not in self._cpts]
        if missing:
            raise NetworkError(f"variables without CPTs: {sorted(missing)}")
        self.topological_order()
        return self

    # -------------------------------------------------------------- semantics
    def log_joint(self, assignment: Mapping[str, str | int]) -> float:
        """``log P(assignment)`` for a *complete* assignment."""
        if set(assignment) != set(self._variables):
            missing = set(self._variables) - set(assignment)
            extra = set(assignment) - set(self._variables)
            raise NetworkError(
                f"assignment must cover all variables (missing {sorted(missing)}, "
                f"unknown {sorted(extra)})"
            )
        total = 0.0
        for name, cpt in self._cpts.items():
            parent_states = {p.name: assignment[p.name] for p in cpt.parents}
            p = cpt.prob(assignment[name], parent_states)
            if p == 0.0:
                return -np.inf
            total += float(np.log(p))
        return total

    def joint_probability(self, assignment: Mapping[str, str | int]) -> float:
        """``P(assignment)`` for a complete assignment (tiny networks only)."""
        lp = self.log_joint(assignment)
        return float(np.exp(lp)) if np.isfinite(lp) else 0.0

    # ------------------------------------------------------------------ stats
    def max_in_degree(self) -> int:
        return max((len(c.parents) for c in self._cpts.values()), default=0)

    def state_counts(self) -> list[int]:
        return [v.cardinality for v in self._variables.values()]

    def total_cpt_entries(self) -> int:
        """Total dense-CPT storage — the paper's proxy for network complexity."""
        return sum(c.size for c in self._cpts.values())

    def summary(self) -> str:
        """One-line description used by the benchmark reports."""
        cards = self.state_counts()
        return (
            f"{self.name}: {self.num_variables} nodes, {self.num_edges} edges, "
            f"states avg {np.mean(cards):.2f} max {max(cards, default=0)}, "
            f"max in-degree {self.max_in_degree()}, "
            f"CPT entries {self.total_cpt_entries()}"
        )

    @classmethod
    def from_cpts(cls, cpts: Iterable[CPT], name: str = "bn") -> "BayesianNetwork":
        """Build and validate a network from a CPT collection."""
        net = cls(name)
        cpt_list = list(cpts)
        for cpt in cpt_list:
            for v in cpt.variables:
                net.add_variable(v)
        for cpt in cpt_list:
            net.add_cpt(cpt)
        return net.validate()
