"""Reader/writer for the BIF (Bayesian Interchange Format) network format.

Supports the dialect used by the bnlearn repository (the source of the
paper's six evaluation networks): ``network``, ``variable`` with
``type discrete [ n ] { states }`` and ``probability`` blocks with either a
flat ``table`` (child state fastest-varying) or per-parent-configuration
rows ``(s1, s2, ...) p1, ..., pk;``.

The parser is a hand-rolled tokenizer + recursive-descent pass; it reports
line numbers on errors.  ``loads(dumps(net))`` round-trips exactly (up to
float formatting), which the property suite verifies.
"""

from __future__ import annotations

import io
import re
from pathlib import Path

import numpy as np

from repro.bn.cpt import CPT
from repro.bn.network import BayesianNetwork
from repro.bn.variable import Variable
from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|\#[^\n]*)        # line comments
  | (?P<punct>[{}()\[\],;|])
  | (?P<number>[-+]?(\d+\.\d*|\.\d+|\d+)([eE][-+]?\d+)?)
  | (?P<word>[A-Za-z_][A-Za-z0-9_\-.]*|"[^"]*")
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


class _Tokens:
    """Token stream with 1-based line tracking."""

    def __init__(self, text: str) -> None:
        self.items: list[tuple[str, str, int]] = []  # (kind, value, line)
        line = 1
        for m in _TOKEN_RE.finditer(text):
            kind = m.lastgroup
            value = m.group()
            if kind in ("ws", "comment"):
                line += value.count("\n")
                continue
            if kind == "bad":
                raise ParseError(f"unexpected character {value!r}", line)
            if kind == "word":
                value = value.strip('"')
            self.items.append((kind, value, line))  # type: ignore[arg-type]
            line += value.count("\n")
        self.pos = 0

    def peek(self) -> tuple[str, str, int] | None:
        return self.items[self.pos] if self.pos < len(self.items) else None

    def next(self, expect: str | None = None) -> tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            last_line = self.items[-1][2] if self.items else 1
            raise ParseError("unexpected end of file", last_line)
        self.pos += 1
        if expect is not None and tok[1] != expect:
            raise ParseError(f"expected {expect!r}, found {tok[1]!r}", tok[2])
        return tok

    def next_word(self) -> tuple[str, int]:
        kind, value, line = self.next()
        if kind not in ("word", "number"):
            raise ParseError(f"expected identifier, found {value!r}", line)
        return value, line

    def next_number(self) -> tuple[float, int]:
        kind, value, line = self.next()
        if kind != "number":
            raise ParseError(f"expected number, found {value!r}", line)
        return float(value), line

    def skip_block(self) -> None:
        """Skip a balanced ``{ ... }`` block (for property/unknown sections)."""
        self.next("{")
        depth = 1
        while depth:
            _, value, _ = self.next()
            if value == "{":
                depth += 1
            elif value == "}":
                depth -= 1


def loads(text: str) -> BayesianNetwork:
    """Parse BIF text into a validated :class:`BayesianNetwork`."""
    toks = _Tokens(text)
    net_name = "bn"
    variables: dict[str, Variable] = {}
    pending: list[tuple[list[str], dict, int]] = []  # (scope names, prob body, line)

    while toks.peek() is not None:
        word, line = toks.next_word()
        if word == "network":
            nxt = toks.peek()
            if nxt and nxt[1] != "{":
                net_name, _ = toks.next_word()
            toks.skip_block()
        elif word == "variable":
            name, vline = toks.next_word()
            var = _parse_variable_block(toks, name, vline)
            if name in variables:
                raise ParseError(f"duplicate variable {name!r}", vline)
            variables[name] = var
        elif word == "probability":
            scope, body, pline = _parse_probability_block(toks)
            pending.append((scope, body, pline))
        else:
            raise ParseError(f"unexpected top-level keyword {word!r}", line)

    net = BayesianNetwork(net_name)
    for var in variables.values():
        net.add_variable(var)
    for scope, body, pline in pending:
        net.add_cpt(_build_cpt(variables, scope, body, pline))
    return net.validate()


def _parse_variable_block(toks: _Tokens, name: str, line: int) -> Variable:
    toks.next("{")
    states: tuple[str, ...] | None = None
    while True:
        kind, value, vline = toks.next()
        if value == "}":
            break
        if value == "type":
            kw, _ = toks.next_word()
            if kw != "discrete":
                raise ParseError(f"only discrete variables supported, got {kw!r}", vline)
            toks.next("[")
            count, _ = toks.next_number()
            toks.next("]")
            toks.next("{")
            names: list[str] = []
            while True:
                kind, value, sline = toks.next()
                if value == "}":
                    break
                if value == ",":
                    continue
                names.append(value)
            toks.next(";")
            if len(names) != int(count):
                raise ParseError(
                    f"variable {name!r} declares {int(count)} states but lists {len(names)}",
                    sline,
                )
            states = tuple(names)
        elif value == "property":
            # consume until ';'
            while toks.next()[1] != ";":
                pass
        else:
            raise ParseError(f"unexpected token {value!r} in variable block", vline)
    if states is None:
        raise ParseError(f"variable {name!r} has no type declaration", line)
    return Variable(name, states)


def _parse_probability_block(toks: _Tokens) -> tuple[list[str], dict, int]:
    _, _, line = toks.next("(")
    scope: list[str] = []  # child first, then parents (the '|' is just a separator)
    while True:
        kind, value, _ = toks.next()
        if value == ")":
            break
        if value in (",", "|"):
            continue
        scope.append(value)
    if not scope:
        raise ParseError("empty probability scope", line)

    body: dict = {"table": None, "rows": [], "default": None}
    toks.next("{")
    while True:
        kind, value, bline = toks.next()
        if value == "}":
            break
        if value == "table":
            body["table"] = (_parse_number_list(toks), bline)
        elif value == "default":
            body["default"] = (_parse_number_list(toks), bline)
        elif value == "(":
            cfg: list[str] = []
            while True:
                kind, value, _ = toks.next()
                if value == ")":
                    break
                if value == ",":
                    continue
                cfg.append(value)
            body["rows"].append((cfg, _parse_number_list(toks), bline))
        else:
            raise ParseError(f"unexpected token {value!r} in probability block", bline)
    return scope, body, line


def _parse_number_list(toks: _Tokens) -> list[float]:
    values: list[float] = []
    while True:
        kind, value, line = toks.next()
        if value == ";":
            break
        if value == ",":
            continue
        if kind != "number":
            raise ParseError(f"expected number, found {value!r}", line)
        values.append(float(value))
    return values


def _build_cpt(variables: dict[str, Variable], scope: list[str], body: dict, line: int) -> CPT:
    try:
        child = variables[scope[0]]
        parents = tuple(variables[p] for p in scope[1:])
    except KeyError as exc:
        raise ParseError(f"probability block references unknown variable {exc.args[0]!r}", line)
    shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
    table = np.full(shape, np.nan)

    if body["default"] is not None:
        default, dline = body["default"]
        if len(default) != child.cardinality:
            raise ParseError(
                f"default row for {child.name!r} has {len(default)} values, "
                f"expected {child.cardinality}",
                dline,
            )
        table[...] = np.asarray(default)

    if body["table"] is not None:
        values, tline = body["table"]
        if len(values) != table.size:
            raise ParseError(
                f"table for {child.name!r} has {len(values)} values, expected {table.size}",
                tline,
            )
        # BIF convention: child state varies fastest — matches C layout with
        # the child axis last.
        table[...] = np.asarray(values).reshape(shape)

    for cfg, values, rline in body["rows"]:
        if len(cfg) != len(parents):
            raise ParseError(
                f"row for {child.name!r} fixes {len(cfg)} parents, expected {len(parents)}",
                rline,
            )
        if len(values) != child.cardinality:
            raise ParseError(
                f"row for {child.name!r} has {len(values)} values, "
                f"expected {child.cardinality}",
                rline,
            )
        idx = tuple(p.state_index(s) for p, s in zip(parents, cfg))
        table[idx] = np.asarray(values)

    if np.isnan(table).any():
        raise ParseError(
            f"probability block for {child.name!r} leaves some parent "
            "configurations undefined",
            line,
        )
    return CPT(child, parents, table)


def load(path: str | Path) -> BayesianNetwork:
    """Parse a ``.bif`` file."""
    return loads(Path(path).read_text())


def dumps(net: BayesianNetwork) -> str:
    """Serialise a network to BIF text (row form for conditionals)."""
    out = io.StringIO()
    out.write(f"network {net.name} {{\n}}\n")
    for v in net.variables:
        states = ", ".join(v.states)
        out.write(
            f"variable {v.name} {{\n"
            f"  type discrete [ {v.cardinality} ] {{ {states} }};\n"
            f"}}\n"
        )
    for v in net.variables:
        cpt = net.cpt(v.name)
        if not cpt.parents:
            row = ", ".join(repr(float(x)) for x in cpt.table)
            out.write(f"probability ( {v.name} ) {{\n  table {row};\n}}\n")
            continue
        out.write(f"probability ( {v.name} | {', '.join(p.name for p in cpt.parents)} ) {{\n")
        parent_shape = tuple(p.cardinality for p in cpt.parents)
        for flat in range(int(np.prod(parent_shape))):
            idx = np.unravel_index(flat, parent_shape)
            cfg = ", ".join(p.states[i] for p, i in zip(cpt.parents, idx))
            row = ", ".join(repr(float(x)) for x in cpt.table[idx])
            out.write(f"  ({cfg}) {row};\n")
        out.write("}\n")
    return out.getvalue()


def dump(net: BayesianNetwork, path: str | Path) -> None:
    """Write a network to a ``.bif`` file."""
    Path(path).write_text(dumps(net))
