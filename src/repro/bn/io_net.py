"""Reader/writer for the Hugin ``.net`` network format.

The second interchange format the bnlearn repository distributes (Munin is
shipped as ``.net``).  Supported dialect::

    net { }
    node A {
      states = ( "yes" "no" );
    }
    potential ( A | B C ) {
      data = ((0.1 0.9) (0.4 0.6) ...);   % nested by parent states
    }

``data`` nesting follows Hugin's convention: outer parentheses iterate the
*first* parent slowest, the child dimension is innermost — identical to our
C-order CPT layout, so parsing is a flat read of the numbers with a count
check.  Comments start with ``%``.
"""

from __future__ import annotations

import io
import re
from pathlib import Path

import numpy as np

from repro.bn.cpt import CPT
from repro.bn.network import BayesianNetwork
from repro.bn.variable import Variable
from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>%[^\n]*)
  | (?P<punct>[{}()=;|])
  | (?P<number>[-+]?(\d+\.\d*|\.\d+|\d+)([eE][-+]?\d+)?)
  | (?P<string>"[^"]*")
  | (?P<word>[A-Za-z_][A-Za-z0-9_\-.]*)
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


class _Stream:
    def __init__(self, text: str) -> None:
        self.toks: list[tuple[str, str, int]] = []
        line = 1
        for m in _TOKEN_RE.finditer(text):
            kind = m.lastgroup
            value = m.group()
            if kind in ("ws", "comment"):
                line += value.count("\n")
                continue
            if kind == "bad":
                raise ParseError(f"unexpected character {value!r}", line)
            if kind == "string":
                value = value[1:-1]
            self.toks.append((kind, value, line))  # type: ignore[arg-type]
            line += value.count("\n")
        self.pos = 0

    def peek(self):
        return self.toks[self.pos] if self.pos < len(self.toks) else None

    def next(self, expect: str | None = None):
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of file",
                             self.toks[-1][2] if self.toks else 1)
        self.pos += 1
        if expect is not None and tok[1] != expect:
            raise ParseError(f"expected {expect!r}, found {tok[1]!r}", tok[2])
        return tok

    def skip_balanced(self, open_tok: str = "{", close_tok: str = "}") -> None:
        self.next(open_tok)
        depth = 1
        while depth:
            _, value, _ = self.next()
            if value == open_tok:
                depth += 1
            elif value == close_tok:
                depth -= 1


def loads(text: str) -> BayesianNetwork:
    """Parse Hugin ``.net`` text into a validated network."""
    s = _Stream(text)
    name = "bn"
    variables: dict[str, Variable] = {}
    potentials: list[tuple[list[str], list[float], int]] = []

    while s.peek() is not None:
        kind, word, line = s.next()
        if word == "net":
            nxt = s.peek()
            if nxt and nxt[1] != "{":
                name = s.next()[1]
            s.skip_balanced()
        elif word == "node":
            node_name = s.next()[1]
            var = _parse_node(s, node_name, line)
            if node_name in variables:
                raise ParseError(f"duplicate node {node_name!r}", line)
            variables[node_name] = var
        elif word == "potential":
            potentials.append(_parse_potential(s, line))
        else:
            raise ParseError(f"unexpected top-level keyword {word!r}", line)

    net = BayesianNetwork(name)
    for var in variables.values():
        net.add_variable(var)
    for scope, values, pline in potentials:
        try:
            child = variables[scope[0]]
            parents = tuple(variables[p] for p in scope[1:])
        except KeyError as exc:
            raise ParseError(f"potential references unknown node {exc.args[0]!r}", pline)
        shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
        expected = int(np.prod(shape)) if shape else 1
        if len(values) != expected:
            raise ParseError(
                f"potential for {child.name!r} has {len(values)} values, "
                f"expected {expected}", pline)
        net.add_cpt(CPT(child, parents, np.asarray(values).reshape(shape)))
    return net.validate()


def _parse_node(s: _Stream, name: str, line: int) -> Variable:
    s.next("{")
    states: tuple[str, ...] | None = None
    while True:
        kind, value, vline = s.next()
        if value == "}":
            break
        if value == "states":
            s.next("=")
            s.next("(")
            labels: list[str] = []
            while True:
                kind, value, _ = s.next()
                if value == ")":
                    break
                labels.append(value)
            s.next(";")
            states = tuple(labels)
        else:
            # Unknown field (position, label, ...): skip to ';'.
            while s.next()[1] != ";":
                pass
    if states is None:
        raise ParseError(f"node {name!r} has no states declaration", line)
    return Variable(name, states)


def _parse_potential(s: _Stream, line: int) -> tuple[list[str], list[float], int]:
    s.next("(")
    scope: list[str] = []
    while True:
        kind, value, _ = s.next()
        if value == ")":
            break
        if value == "|":
            continue
        scope.append(value)
    if not scope:
        raise ParseError("empty potential scope", line)
    s.next("{")
    values: list[float] = []
    saw_data = False
    while True:
        kind, value, vline = s.next()
        if value == "}":
            break
        if value == "data":
            saw_data = True
            s.next("=")
            depth = 0
            while True:
                kind, value, _ = s.next()
                if value == "(":
                    depth += 1
                elif value == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif kind == "number":
                    values.append(float(value))
                else:
                    raise ParseError(f"unexpected token {value!r} in data", vline)
            s.next(";")
        else:
            while s.next()[1] != ";":
                pass
    if not saw_data:
        raise ParseError(f"potential for {scope[0]!r} has no data", line)
    return scope, values, line


def load(path: str | Path) -> BayesianNetwork:
    """Parse a ``.net`` file."""
    return loads(Path(path).read_text())


def dumps(net: BayesianNetwork) -> str:
    """Serialise to Hugin ``.net`` (nested-parenthesis data blocks)."""
    out = io.StringIO()
    out.write(f"net {net.name}\n{{\n}}\n")
    for v in net.variables:
        labels = " ".join(f'"{s}"' for s in v.states)
        out.write(f"node {v.name}\n{{\n  states = ( {labels} );\n}}\n")
    for v in net.variables:
        cpt = net.cpt(v.name)
        if cpt.parents:
            scope = f"{v.name} | {' '.join(p.name for p in cpt.parents)}"
        else:
            scope = v.name
        out.write(f"potential ( {scope} )\n{{\n  data = ")
        out.write(_nested(cpt.table))
        out.write(";\n}\n")
    return out.getvalue()


def _nested(arr: np.ndarray) -> str:
    if arr.ndim == 1:
        return "( " + " ".join(repr(float(x)) for x in arr) + " )"
    return "( " + " ".join(_nested(sub) for sub in arr) + " )"


def dump(net: BayesianNetwork, path: str | Path) -> None:
    """Write a network to a ``.net`` file."""
    Path(path).write_text(dumps(net))
