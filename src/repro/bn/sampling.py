"""Forward sampling and inference test-case generation.

The paper's workload: "We randomly generated 2,000 test cases from each
network, each with 20% of the observed variables."  A *test case* is an
evidence assignment; we generate it the way FastBN does — draw a full joint
sample by ancestral (forward) sampling, then reveal a random 20% subset of
the variables as evidence.  Sampling from the joint guarantees the evidence
has non-zero probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import EvidenceError
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class TestCase:
    """One inference workload item: evidence plus (optional) query targets."""

    __test__ = False  # not a pytest class, despite the name

    evidence: dict[str, int]
    #: Variables whose posteriors the engine must report; empty = all
    #: unobserved variables.
    targets: tuple[str, ...] = field(default=())
    #: Optional likelihood vectors (virtual evidence) per variable; engines
    #: that cannot batch soft evidence fall back to per-case inference.
    soft_evidence: "dict[str, object] | None" = field(default=None)

    def __post_init__(self) -> None:
        overlap = set(self.evidence) & set(self.targets)
        if overlap:
            raise EvidenceError(f"targets overlap evidence: {sorted(overlap)}")
        if self.soft_evidence:
            hard_and_soft = set(self.evidence) & set(self.soft_evidence)
            if hard_and_soft:
                raise EvidenceError(
                    f"soft evidence overlaps hard evidence: {sorted(hard_and_soft)}"
                )


def forward_sample(
    net: BayesianNetwork,
    rng: np.random.Generator | int | None = None,
) -> dict[str, int]:
    """Draw one complete assignment by ancestral sampling (state indices)."""
    rng = as_rng(rng)
    sample: dict[str, int] = {}
    for var in net.topological_order():
        cpt = net.cpt(var.name)
        idx = tuple(sample[p.name] for p in cpt.parents)
        probs = cpt.table[idx]
        sample[var.name] = int(rng.choice(var.cardinality, p=probs))
    return sample


def forward_sample_many(
    net: BayesianNetwork,
    n: int,
    rng: np.random.Generator | int | None = None,
) -> list[dict[str, int]]:
    """Draw ``n`` complete assignments (vectorised per variable).

    For each variable we draw all ``n`` states at once using the inverse-CDF
    trick on the rows selected by the already-sampled parent states — much
    faster than ``n`` independent :func:`forward_sample` calls.
    """
    if n < 0:
        raise ValueError(f"cannot draw {n} samples")
    rng = as_rng(rng)
    columns: dict[str, np.ndarray] = {}
    for var in net.topological_order():
        cpt = net.cpt(var.name)
        if cpt.parents:
            parent_cols = np.stack([columns[p.name] for p in cpt.parents], axis=0)
            rows = cpt.table[tuple(parent_cols)]  # (n, card)
        else:
            rows = np.broadcast_to(cpt.table, (n, var.cardinality))
        cdf = np.cumsum(rows, axis=1)
        u = rng.random(n)[:, None]
        columns[var.name] = (u >= cdf).sum(axis=1).clip(0, var.cardinality - 1)
    names = list(columns)
    return [{name: int(columns[name][i]) for name in names} for i in range(n)]


def generate_test_cases(
    net: BayesianNetwork,
    num_cases: int,
    observed_fraction: float = 0.2,
    rng: np.random.Generator | int | None = None,
    num_targets: int | None = None,
) -> list[TestCase]:
    """Generate the paper's inference workload.

    Each case observes ``round(observed_fraction * |V|)`` variables chosen
    uniformly at random, with states taken from one forward sample.  When
    ``num_targets`` is given, that many unobserved variables are marked as
    query targets (default: all unobserved variables are queried, matching
    the full-posterior semantics of the JT engines).
    """
    if not 0.0 <= observed_fraction <= 1.0:
        raise EvidenceError(f"observed_fraction must be in [0, 1], got {observed_fraction}")
    rng = as_rng(rng)
    names = list(net.variable_names)
    k = int(round(observed_fraction * len(names)))
    samples = forward_sample_many(net, num_cases, rng)
    cases: list[TestCase] = []
    for sample in samples:
        chosen = rng.choice(len(names), size=k, replace=False) if k else np.array([], dtype=int)
        evidence = {names[i]: sample[names[i]] for i in sorted(int(c) for c in chosen)}
        hidden = [n for n in names if n not in evidence]
        if num_targets is not None and hidden:
            t = rng.choice(len(hidden), size=min(num_targets, len(hidden)), replace=False)
            targets = tuple(hidden[i] for i in sorted(int(x) for x in t))
        else:
            targets = ()
        cases.append(TestCase(evidence=evidence, targets=targets))
    return cases


def empirical_marginal(
    samples: list[dict[str, int]],
    name: str,
    cardinality: int,
) -> np.ndarray:
    """Empirical distribution of one variable over a sample batch."""
    counts = np.zeros(cardinality)
    for s in samples:
        counts[s[name]] += 1
    total = counts.sum()
    if total == 0:
        raise EvidenceError("no samples given")
    return counts / total
