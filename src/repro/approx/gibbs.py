"""Vectorised multi-chain Gibbs sampling with convergence diagnostics.

The reference sampler (:mod:`repro.baselines.approximate`) rebuilds each
full-conditional from CPT slices per site per sweep; here the Markov
blanket of every hidden variable is compiled **once** into flat-index maps:
for variable *v* and each blanket CPT, the table is raveled and the entry
needed for candidate state ``s`` at chain state ``x`` is

    ``table.ravel()[Σ_{u ≠ v} stride(u)·x_u  +  stride(v)·s]``

so one sweep site costs one ``(C, card)`` gather + log-sum per blanket
factor, vectorised across all C chains at once.

Diagnostics follow the standard recipe: chains are split in half and the
potential-scale-reduction factor (split R̂) is computed per target state
from per-half indicator counts — for Bernoulli indicators the within-chain
sample variance is a function of the half's mean, so no per-iteration
storage is needed.  The between-chain spread also yields the standard
error (std of chain means / √m) and a crude effective sample size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import EvidenceError
from repro.utils.rng import as_rng

#: Floor applied inside logs so structurally-zero CPT entries stay finite.
_LOG_FLOOR = 1e-300


@dataclass(frozen=True)
class BlanketTerm:
    """One Markov-blanket factor of a variable, as a flat-index map."""

    #: The raveled CPT table (read-only view).
    flat: np.ndarray
    #: C-order stride of the variable being resampled within that table.
    own_stride: int
    #: ``(name, stride)`` of every other scope variable.
    fixed: tuple[tuple[str, int], ...]


def compile_blankets(net: BayesianNetwork) -> dict[str, list[BlanketTerm]]:
    """Precompute every variable's blanket terms (own CPT + children CPTs)."""
    blankets: dict[str, list[BlanketTerm]] = {v.name: [] for v in net.variables}
    for cpt in net.cpts:
        scope = cpt.variables                      # parents first, child last
        strides: dict[str, int] = {}
        stride = 1
        for v in reversed(scope):
            strides[v.name] = stride
            stride *= v.cardinality
        for member in scope:
            fixed = tuple((v.name, strides[v.name])
                          for v in scope if v.name != member.name)
            blankets[member.name].append(BlanketTerm(
                flat=cpt.table.reshape(-1),
                own_stride=strides[member.name],
                fixed=fixed,
            ))
    return blankets


@dataclass
class GibbsDiagnostics:
    """Split-R̂ and between-chain error estimates for one run."""

    #: Per target: ``(card,)`` split potential-scale-reduction factors.
    r_hat: dict[str, np.ndarray]
    #: Per target: ``(card,)`` standard errors (between-chain spread).
    stderr: dict[str, np.ndarray]
    #: Crude multi-chain effective sample size (min over target states).
    ess: float

    def max_r_hat(self) -> float:
        vals = [float(np.nanmax(v)) for v in self.r_hat.values() if v.size]
        return max(vals) if vals else 1.0


class GibbsSampler:
    """Multi-chain Gibbs over the hidden variables of one query.

    Chains persist across :meth:`extend` calls, so an adaptive caller can
    keep drawing until R̂ and the standard errors clear its thresholds
    without discarding burnt-in states.
    """

    def __init__(self, net: BayesianNetwork, evidence: dict[str, int],
                 soft_evidence: dict[str, np.ndarray] | None = None,
                 chains: int = 4, burn_in: int = 200,
                 rng: "np.random.Generator | int | None" = None,
                 blankets: dict[str, list[BlanketTerm]] | None = None) -> None:
        if chains < 2:
            raise EvidenceError(f"Gibbs diagnostics need >= 2 chains, got {chains}")
        if burn_in < 0:
            raise EvidenceError(f"burn_in must be >= 0, got {burn_in}")
        self.net = net
        self.evidence = dict(evidence)
        self.chains = chains
        self.rng = as_rng(rng)
        self._blankets = blankets if blankets is not None else compile_blankets(net)
        self._soft_log: dict[str, np.ndarray] = {}
        for name, vec in (soft_evidence or {}).items():
            arr = np.asarray(vec, dtype=np.float64)
            self._soft_log[name] = np.log(np.maximum(arr, _LOG_FLOOR))
        self.hidden = [v for v in net.variables if v.name not in evidence]
        if not self.hidden:
            raise EvidenceError("all variables observed; nothing to sample")
        #: (C,) int64 state column per variable (evidence columns constant).
        self.state: dict[str, np.ndarray] = {}
        self._init_chains()
        #: Per variable: (C, card) post-burn-in visit counts.
        self.counts: dict[str, np.ndarray] = {
            v.name: np.zeros((chains, v.cardinality)) for v in self.hidden}
        #: Counts of the first half of the retained draws (for split R̂).
        self.first_half: dict[str, np.ndarray] = {
            v.name: np.zeros((chains, v.cardinality)) for v in self.hidden}
        self.draws = 0
        #: Recorded draws inside the first-half snapshot (see :meth:`extend`).
        self._first_n = 0
        self.sweep(burn_in, record=False)

    # ------------------------------------------------------------------ setup
    def _init_chains(self) -> None:
        """Forward-sample C independent starting states (evidence clamped)."""
        c = self.chains
        for var in self.net.topological_order():
            if var.name in self.evidence:
                self.state[var.name] = np.full(c, self.evidence[var.name],
                                               dtype=np.int64)
                continue
            cpt = self.net.cpt(var.name)
            if cpt.parents:
                rows = cpt.table[tuple(self.state[p.name] for p in cpt.parents)]
            else:
                rows = np.broadcast_to(cpt.table, (c, var.cardinality))
            cdf = np.cumsum(rows, axis=1)
            u = self.rng.random(c)[:, None]
            self.state[var.name] = (u >= cdf).sum(axis=1).clip(
                0, var.cardinality - 1).astype(np.int64)

    # ---------------------------------------------------------------- sweeps
    def _conditional_logits(self, name: str, card: int) -> np.ndarray:
        """``(C, card)`` unnormalised log full-conditional across chains."""
        logits = np.zeros((self.chains, card))
        for term in self._blankets[name]:
            base = np.zeros(self.chains, dtype=np.int64)
            for other, stride in term.fixed:
                base += stride * self.state[other]
            idx = base[:, None] + term.own_stride * np.arange(card)[None, :]
            logits += np.log(np.maximum(term.flat[idx], _LOG_FLOOR))
        soft = self._soft_log.get(name)
        if soft is not None:
            logits = logits + soft[None, :]
        return logits

    def sweep(self, num_sweeps: int, record: bool = True) -> None:
        """Run full Gibbs sweeps; optionally record visit counts."""
        for _ in range(num_sweeps):
            for var in self.hidden:
                card = var.cardinality
                logits = self._conditional_logits(var.name, card)
                probs = np.exp(logits - logits.max(axis=1, keepdims=True))
                cdf = np.cumsum(probs, axis=1)
                u = self.rng.random(self.chains)[:, None] * cdf[:, -1:]
                self.state[var.name] = (u >= cdf).sum(axis=1).clip(
                    0, card - 1).astype(np.int64)
            if record:
                for var in self.hidden:
                    col = self.state[var.name]
                    rows = np.arange(self.chains)
                    self.counts[var.name][rows, col] += 1.0
                self.draws += 1

    def extend(self, num_draws: int) -> None:
        """Draw ``num_draws`` more recorded sweeps, maintaining split halves.

        When the run grows to at least double its current length (the
        adaptive engine's doubling schedule always does), the first-half
        snapshot is re-taken exactly at the new midpoint, keeping the split
        halves equal; smaller extensions keep the previous boundary, which
        merely makes the split slightly uneven.
        """
        target = self.draws + num_draws
        first_target = target // 2
        if self.draws <= first_target:
            self.sweep(first_target - self.draws)
            for name, snap in self.first_half.items():
                np.copyto(snap, self.counts[name])
            self._first_n = first_target
        self.sweep(target - self.draws)

    # ------------------------------------------------------------ estimates
    def posterior(self, name: str) -> np.ndarray:
        """``(card,)`` posterior estimate pooled over chains."""
        if name in self.evidence:
            card = self.net.variable(name).cardinality
            out = np.zeros(card)
            out[self.evidence[name]] = 1.0
            return out
        counts = self.counts[name]
        total = counts.sum()
        if total <= 0:
            raise EvidenceError("no recorded Gibbs draws; call extend() first")
        return counts.sum(axis=0) / total

    def diagnostics(self, targets: tuple[str, ...] = ()) -> GibbsDiagnostics:
        """Split R̂ + between-chain standard errors for ``targets``."""
        names = [n for n in (targets or tuple(v.name for v in self.hidden))
                 if n not in self.evidence]
        m = self.chains
        r_hat: dict[str, np.ndarray] = {}
        stderr: dict[str, np.ndarray] = {}
        min_ess = float(m * self.draws)
        n1 = self._first_n
        n2 = self.draws - n1
        for name in names:
            counts = self.counts[name]
            chain_means = counts / max(self.draws, 1)
            se = chain_means.std(axis=0, ddof=1) / np.sqrt(m)
            stderr[name] = se
            if min(n1, n2) < 2:
                r_hat[name] = np.full(counts.shape[1], np.nan)
                continue
            first = self.first_half[name]
            second = counts - first
            # 2m half-chains; Bernoulli indicators mean the within-half
            # sample variance is n/(n-1)·p(1-p), so per-half counts suffice.
            # Halves are equal under the doubling schedule; n̄ covers the
            # slightly-uneven case.
            halves = np.concatenate([first / n1, second / n2], axis=0)
            halves = np.clip(halves, 0.0, 1.0)
            n_bar = (n1 + n2) / 2.0
            within = (n_bar / (n_bar - 1)) * halves * (1.0 - halves)
            w = within.mean(axis=0)
            b = n_bar * halves.var(axis=0, ddof=1)
            var_plus = (n_bar - 1) / n_bar * w + b / n_bar
            cap = 2.0 * m * n_bar
            with np.errstate(divide="ignore", invalid="ignore"):
                rh = np.sqrt(np.where(w > 0, var_plus / w, 1.0))
                ess = np.where(b > 0, cap * var_plus / b, cap)
            degenerate = (halves.max(axis=0) - halves.min(axis=0)) < 1e-12
            rh[degenerate] = 1.0
            r_hat[name] = rh
            min_ess = min(min_ess, float(np.min(np.minimum(ess, cap))))
        return GibbsDiagnostics(r_hat=r_hat, stderr=stderr, ess=min_ess)
