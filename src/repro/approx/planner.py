"""Cost-based exact/approx query planner.

Exact junction-tree calibration is exponential in induced width: one dense
high-treewidth network can stall a serving process (or exhaust its memory)
at *compile* time, before a single query runs.  The planner prices exact
inference up front — a min-fill fill-in simulation over the moral graph
(:func:`repro.graph.treewidth.fill_in_cost`) gives the induced width and an
estimated total clique-table byte count without building any potential —
and routes each network:

* ``policy="exact"``   — always exact, but *refuse* (raise
  :class:`~repro.errors.PlannerError`) when the estimate exceeds the hard
  ``refuse_exact_bytes`` cap rather than thrash or OOM;
* ``policy="approx"``  — always the sampling engine;
* ``policy="auto"``    — exact while the estimate fits ``max_exact_bytes``,
  approximate beyond it (the serving default).

The estimate is an upper bound (elimination cliques before merging), which
errs toward approximation — a cheap-but-safe answer with error bars beats
an exact compile that never finishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bn.network import BayesianNetwork
from repro.errors import PlannerError
from repro.exec.engine_api import CAPABILITIES_BY_KIND, EngineCapabilities
from repro.graph.moralize import moralize
from repro.graph.treewidth import EliminationCost, fill_in_cost

POLICIES = ("exact", "approx", "auto")

#: Auto-routing threshold: estimated JT tables beyond this go to sampling.
#: 64 MiB of float64 clique tables ≈ a second-scale compile in this pure-
#: Python engine — past that, a resident server's latency SLO is gone.
DEFAULT_MAX_EXACT_BYTES = 64 * 1024 * 1024

#: Hard refusal cap for ``policy="exact"``: above this the compile is not
#: merely slow but a process-killer, so the planner refuses outright.
DEFAULT_REFUSE_EXACT_BYTES = 1024 * 1024 * 1024


@dataclass(frozen=True)
class PlanDecision:
    """The planner's verdict for one network."""

    #: ``"exact"`` or ``"approx"``.
    engine: str
    #: The policy that produced the decision.
    policy: str
    #: The fill-in cost estimate the decision is based on.
    estimate: EliminationCost
    #: Human-readable justification (surfaced by the service ``info`` op).
    reason: str

    @property
    def capabilities(self) -> EngineCapabilities:
        """Capability flags of the chosen engine class.

        Downstream layers (registry, server) dispatch on these — a
        routing decision hands back *what the engine can do*, not a bare
        string to compare against.
        """
        return CAPABILITIES_BY_KIND[self.engine]


def estimate_jt_cost(net: BayesianNetwork,
                     heuristic: str = "min-fill") -> EliminationCost:
    """Price exact compilation of ``net`` without compiling anything."""
    adjacency = moralize(net)
    cards = {v.name: v.cardinality for v in net.variables}
    return fill_in_cost(adjacency, cards, heuristic=heuristic)


class QueryPlanner:
    """Routes networks to the exact or approximate engine class.

    The planner never compiles anything: a min-fill fill-in simulation
    over the moral graph (:func:`repro.graph.treewidth.fill_in_cost`)
    prices the would-be junction tree, and the policy compares that
    estimate against byte thresholds.

    Parameters
    ----------
    policy:
        Default routing — ``"exact"`` (always compile), ``"approx"``
        (always sample) or ``"auto"`` (cost-based).  Anything else
        raises :class:`~repro.errors.PlannerError`.
    max_exact_bytes:
        ``auto`` threshold: estimated total clique-table bytes beyond
        which a network is routed to sampling (default 64 MiB).
    refuse_exact_bytes:
        Hard cap for ``policy="exact"``: past this estimate
        :meth:`plan` raises :class:`~repro.errors.PlannerError` instead
        of letting a compile thrash or OOM (default 1 GiB; must be
        >= ``max_exact_bytes``).
    heuristic:
        Triangulation heuristic used for the estimate; keep it equal to
        the engine's compile heuristic or the estimate prices the wrong
        tree.
    """

    def __init__(self, policy: str = "auto",
                 max_exact_bytes: int = DEFAULT_MAX_EXACT_BYTES,
                 refuse_exact_bytes: int = DEFAULT_REFUSE_EXACT_BYTES,
                 heuristic: str = "min-fill") -> None:
        if policy not in POLICIES:
            raise PlannerError(
                f"unknown engine policy {policy!r}; expected one of {POLICIES}")
        if max_exact_bytes <= 0 or refuse_exact_bytes < max_exact_bytes:
            raise PlannerError(
                "need 0 < max_exact_bytes <= refuse_exact_bytes, got "
                f"{max_exact_bytes} and {refuse_exact_bytes}"
            )
        self.policy = policy
        self.max_exact_bytes = max_exact_bytes
        self.refuse_exact_bytes = refuse_exact_bytes
        self.heuristic = heuristic

    def plan(self, net: BayesianNetwork,
             policy: str | None = None) -> PlanDecision:
        """Decide the engine for ``net`` under ``policy`` (default: own)."""
        policy = policy if policy is not None else self.policy
        if policy not in POLICIES:
            raise PlannerError(
                f"unknown engine policy {policy!r}; expected one of {POLICIES}")
        estimate = estimate_jt_cost(net, heuristic=self.heuristic)
        size = f"width {estimate.width}, ~{estimate.total_table_bytes:,} table bytes"
        if policy == "approx":
            return PlanDecision("approx", policy, estimate,
                                f"policy forces sampling ({size})")
        if policy == "exact":
            if estimate.total_table_bytes > self.refuse_exact_bytes:
                raise PlannerError(
                    f"refusing exact compilation of {net.name!r}: estimated "
                    f"junction-tree tables ({size}) exceed the hard cap of "
                    f"{self.refuse_exact_bytes:,} bytes; use engine policy "
                    "'approx' or 'auto'"
                )
            return PlanDecision("exact", policy, estimate,
                                f"policy forces exact ({size})")
        if estimate.total_table_bytes > self.max_exact_bytes:
            return PlanDecision(
                "approx", policy, estimate,
                f"estimated exact cost ({size}) exceeds the "
                f"{self.max_exact_bytes:,}-byte auto threshold")
        return PlanDecision("exact", policy, estimate,
                            f"estimated exact cost ({size}) is affordable")
