"""Approximate inference subsystem: vectorised samplers + query planner.

Fast-BNI's exact engines are exponential in induced treewidth; this
package is the service's second engine class for the networks exact
compilation cannot afford:

* :mod:`repro.approx.lw` — batched likelihood weighting: all N particles
  advance together as ``(N,)`` state columns, one CPT gather per node, with
  mergeable accumulators, effective-sample-size and standard-error output;
* :mod:`repro.approx.gibbs` — vectorised multi-chain Gibbs with
  precomputed Markov-blanket index maps, burn-in, and split-R̂ convergence
  diagnostics;
* :mod:`repro.approx.engine` — :class:`ApproxBNI`, the ``FastBNI``-shaped
  engine with adaptive sample-count escalation (double until the standard
  errors clear the tolerance or the budget runs out);
* :mod:`repro.approx.planner` — :class:`QueryPlanner`, the cost model that
  prices exact compilation via a min-fill fill-in simulation and routes
  each network to ``exact``, ``approx``, or decides under ``auto``.
"""

from repro.approx.engine import (ApproxBatchResult, ApproxBNI,
                                 ApproxInferenceResult)
from repro.approx.gibbs import GibbsSampler, compile_blankets
from repro.approx.lw import LWAccumulator, sample_population
from repro.approx.planner import (DEFAULT_MAX_EXACT_BYTES,
                                  DEFAULT_REFUSE_EXACT_BYTES, POLICIES,
                                  PlanDecision, QueryPlanner, estimate_jt_cost)

__all__ = [
    "ApproxBNI",
    "ApproxBatchResult",
    "ApproxInferenceResult",
    "DEFAULT_MAX_EXACT_BYTES",
    "DEFAULT_REFUSE_EXACT_BYTES",
    "GibbsSampler",
    "LWAccumulator",
    "POLICIES",
    "PlanDecision",
    "QueryPlanner",
    "compile_blankets",
    "estimate_jt_cost",
    "sample_population",
]
