"""Batched likelihood weighting: vectorised importance sampling.

The per-sample reference sampler (:mod:`repro.baselines.approximate`) walks
one particle at a time through the network; this module forward-samples
**all N particles simultaneously** as ``(N,)`` NumPy state columns in
topological order — one fancy-indexed CPT row lookup per node, never per
sample.  Hard evidence clamps the column and multiplies the row likelihood
into the weights; soft evidence multiplies the likelihood vector entry of
the *sampled* state (importance weighting against the prior proposal).

The same machinery runs K evidence cases over **one shared particle
population**: unobserved nodes draw one ``(N,)`` uniform vector reused by
every case (common random numbers), so cases differ only where their
evidence clamps.  That is what lets the service micro-batcher coalesce
concurrent approximate queries into a single pass over the topology.

All accumulators are mergeable, so the adaptive engine can double the
population until the reported standard errors clear its tolerance without
discarding earlier draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import EvidenceError
from repro.utils.rng import as_rng


@dataclass
class LWAccumulator:
    """Mergeable sufficient statistics of a weighted particle population.

    For the self-normalised estimate ``p̂_s = Σ wᵢ·Iᵢ(s) / Σ wᵢ`` the
    delta-method variance needs only ``Σ w²·I`` per state plus the global
    ``Σ w`` / ``Σ w²`` — all additive across populations, so escalation
    rounds merge instead of re-sampling.
    """

    #: Per case: ``Σ w`` and ``Σ w²`` over all particles.
    total_w: np.ndarray
    total_w2: np.ndarray
    #: Particles drawn per case (for the P(e) estimate ``Σw / n``).
    num_samples: int
    #: Per target: ``(K, card)`` arrays of ``Σ w·I`` and ``Σ w²·I``.
    weighted: dict[str, np.ndarray] = field(default_factory=dict)
    weighted_sq: dict[str, np.ndarray] = field(default_factory=dict)

    def merge(self, other: "LWAccumulator") -> None:
        self.total_w = self.total_w + other.total_w
        self.total_w2 = self.total_w2 + other.total_w2
        self.num_samples += other.num_samples
        for name in self.weighted:
            self.weighted[name] = self.weighted[name] + other.weighted[name]
            self.weighted_sq[name] = (self.weighted_sq[name]
                                      + other.weighted_sq[name])

    # ------------------------------------------------------------- estimates
    def ess(self) -> np.ndarray:
        """Kish effective sample size per case, ``(Σw)² / Σw²``."""
        with np.errstate(divide="ignore", invalid="ignore"):
            ess = np.where(self.total_w2 > 0.0,
                           self.total_w ** 2 / self.total_w2, 0.0)
        return ess

    def posterior(self, name: str) -> np.ndarray:
        """``(K, card)`` posterior estimate for one target."""
        tw = self.total_w[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            p = np.where(tw > 0.0, self.weighted[name] / tw, 0.0)
        return p

    def stderr(self, name: str) -> np.ndarray:
        """``(K, card)`` delta-method standard error of :meth:`posterior`.

        ``Var(p̂_s) ≈ Σ wᵢ²(Iᵢ − p̂_s)² / (Σw)²``; with indicator targets the
        numerator expands to ``Σw²I·(1 − 2p̂) + p̂²·Σw²``.
        """
        p = self.posterior(name)
        var_num = (self.weighted_sq[name] * (1.0 - 2.0 * p)
                   + p ** 2 * self.total_w2[:, None])
        tw = self.total_w[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            se = np.where(tw > 0.0,
                          np.sqrt(np.maximum(var_num, 0.0)) / tw, np.inf)
        return se

    def log_evidence(self) -> np.ndarray:
        """Per-case ``log P(e)`` estimate: ``log(Σw / n)``; −inf if zero."""
        out = np.full(self.total_w.shape, -np.inf)
        ok = self.total_w > 0.0
        out[ok] = np.log(self.total_w[ok] / self.num_samples)
        return out


def _case_clamp_arrays(
    net: BayesianNetwork,
    cases: list[dict[str, int]],
) -> dict[str, np.ndarray]:
    """Per variable observed in any case: ``(K,)`` state column, −1 = free."""
    clamp: dict[str, np.ndarray] = {}
    for i, ev in enumerate(cases):
        for name, state in ev.items():
            col = clamp.get(name)
            if col is None:
                col = np.full(len(cases), -1, dtype=np.int64)
                clamp[name] = col
            col[i] = state
    return clamp


def _case_soft_arrays(
    net: BayesianNetwork,
    soft_cases: list[dict[str, np.ndarray] | None],
) -> dict[str, np.ndarray]:
    """Per soft-evidenced variable: ``(K, card)`` likelihoods, 1.0 = none."""
    out: dict[str, np.ndarray] = {}
    for i, soft in enumerate(soft_cases):
        if not soft:
            continue
        for name, vec in soft.items():
            arr = out.get(name)
            if arr is None:
                card = net.variable(name).cardinality
                arr = np.ones((len(soft_cases), card))
                out[name] = arr
            arr[i] = np.asarray(vec, dtype=np.float64)
    return out


def sample_population(
    net: BayesianNetwork,
    num_samples: int,
    cases: list[dict[str, int]],
    soft_cases: list[dict[str, np.ndarray] | None] | None = None,
    rng: "np.random.Generator | int | None" = None,
    targets: tuple[str, ...] = (),
) -> LWAccumulator:
    """One shared-population likelihood-weighting pass over ``K`` cases.

    ``cases`` hold *state-index* hard evidence; ``soft_cases`` optional
    likelihood vectors per case.  Returns the mergeable accumulator over
    ``targets`` (default: every network variable).
    """
    rng = as_rng(rng)
    k, n = len(cases), num_samples
    if k < 1 or n < 1:
        raise EvidenceError(f"need >= 1 case and >= 1 sample, got {k} and {n}")
    clamp = _case_clamp_arrays(net, cases)
    soft = _case_soft_arrays(net, soft_cases or [None] * k)
    names = targets or net.variable_names

    # Keeping every (K, N) state column alive for the whole pass costs
    # O(V·K·N) — gigabytes on exactly the wide networks the planner routes
    # here.  A column is only needed while an unsampled child still reads
    # it (or it is a requested target), so free each one at its last use.
    order = net.topological_order()
    last_use = {var.name: i for i, var in enumerate(order)}
    for i, var in enumerate(order):
        for p in net.cpt(var.name).parents:
            last_use[p.name] = i
    free_after: dict[int, list[str]] = {}
    keep = set(names)
    for name, i in last_use.items():
        if name not in keep:
            free_after.setdefault(i, []).append(name)

    columns: dict[str, np.ndarray] = {}   # (K, N) int64 state columns
    weights = np.ones((k, n))
    for step, var in enumerate(order):
        cpt = net.cpt(var.name)
        card = var.cardinality
        if cpt.parents:
            parent_cols = tuple(columns[p.name] for p in cpt.parents)
            rows = cpt.table[parent_cols]                    # (K, N, card)
        else:
            rows = np.broadcast_to(cpt.table, (k, n, card))
        clamp_col = clamp.get(var.name)
        if clamp_col is not None and np.all(clamp_col >= 0):
            # Observed in every case: clamp, no sampling needed.
            col = np.broadcast_to(clamp_col[:, None], (k, n)).copy()
            weights = weights * np.take_along_axis(
                rows, col[:, :, None], axis=2)[:, :, 0]
        else:
            # One shared (N,) uniform draw per node, reused by every case:
            # cases share the particle population and differ only where
            # their evidence clamps.
            cdf = np.cumsum(rows, axis=2)
            u = rng.random(n)[None, :, None]
            col = (u >= cdf).sum(axis=2).clip(0, card - 1).astype(np.int64)
            if clamp_col is not None:
                observed = clamp_col >= 0                    # (K,)
                forced = np.broadcast_to(
                    np.maximum(clamp_col, 0)[:, None], (k, n))
                col = np.where(observed[:, None], forced, col)
                row_w = np.take_along_axis(
                    rows, col[:, :, None], axis=2)[:, :, 0]
                weights = weights * np.where(observed[:, None], row_w, 1.0)
        soft_arr = soft.get(var.name)
        if soft_arr is not None:                             # (K, card)
            weights = weights * soft_arr[np.arange(k)[:, None], col]
        columns[var.name] = col
        for done in free_after.get(step, ()):
            del columns[done]

    weights_sq = weights ** 2
    acc = LWAccumulator(
        total_w=weights.sum(axis=1),
        total_w2=weights_sq.sum(axis=1),
        num_samples=n,
    )
    for name in names:
        card = net.variable(name).cardinality
        w1 = np.empty((k, card))
        w2 = np.empty((k, card))
        col = columns[name]
        for i in range(k):
            w1[i] = np.bincount(col[i], weights=weights[i], minlength=card)
            w2[i] = np.bincount(col[i], weights=weights_sq[i], minlength=card)
        acc.weighted[name] = w1
        acc.weighted_sq[name] = w2
    return acc
