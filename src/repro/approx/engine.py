"""``ApproxBNI``: the approximate-inference engine behind the planner.

Exposes the same ``infer`` / ``infer_batch`` / ``infer_cases`` /
``posteriors`` surface as :class:`repro.core.FastBNI` so the service
registry, micro-batcher and CLI can swap it in wherever exact junction-tree
compilation is not affordable — but every answer carries its uncertainty:
per-state standard errors, the effective sample size, and (for Gibbs) the
split-R̂ convergence diagnostic.

Sample counts adapt per query: the engine starts at ``num_samples``
particles and doubles the population (merging accumulators, never
discarding draws) until the worst per-state standard error over the
requested targets drops below ``tolerance`` or ``max_samples`` is reached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.approx.gibbs import BlanketTerm, GibbsSampler, compile_blankets
from repro.approx.lw import LWAccumulator, sample_population
from repro.bn.network import BayesianNetwork
from repro.errors import BackendError, EvidenceError
from repro.exec.engine_api import APPROX_ENGINE
from repro.jt.engine import InferenceResult
from repro.utils.rng import as_rng

METHODS = ("lw", "gibbs")

#: Default escalation ceiling; callers passing a larger starting
#: ``num_samples`` should raise ``max_samples`` with it (the CLI does).
DEFAULT_MAX_SAMPLES = 131072


@dataclass
class ApproxInferenceResult(InferenceResult):
    """An :class:`InferenceResult` that also reports its own uncertainty."""

    #: Per target: ``(card,)`` standard error of each posterior entry.
    stderr: dict[str, np.ndarray] = field(default_factory=dict)
    #: Effective sample size of the estimate (Kish for LW, split-R̂ for Gibbs).
    ess: float = 0.0
    #: Particles drawn (LW) or recorded draws across chains (Gibbs).
    num_samples: int = 0
    #: Sampler that produced the answer, ``"lw"`` or ``"gibbs"``.
    method: str = "lw"
    #: Worst split-R̂ across targets (Gibbs only; ``nan`` for LW).
    r_hat: float = float("nan")

    def max_stderr(self) -> float:
        vals = [float(se.max()) for se in self.stderr.values() if se.size]
        return max(vals) if vals else 0.0


@dataclass
class ApproxBatchResult:
    """Batch container matching ``BatchInferenceResult``'s iteration API."""

    results: "list[ApproxInferenceResult]"

    def __len__(self) -> int:
        return len(self.results)

    def case(self, i: int) -> ApproxInferenceResult:
        if not 0 <= i < len(self.results):
            raise IndexError(f"case {i} out of range (batch of {len(self.results)})")
        return self.results[i]

    def __iter__(self):
        return iter(self.results)


def check_net_evidence(net: BayesianNetwork,
                       evidence: dict[str, str | int] | None) -> dict[str, int]:
    """Validate evidence names/states against a network (no tree needed)."""
    out: dict[str, int] = {}
    for name, state in (evidence or {}).items():
        if name not in net:
            raise EvidenceError(f"evidence variable {name!r} not in network")
        out[name] = net.variable(name).state_index(state)
    return out


def check_net_soft_evidence(net: BayesianNetwork,
                            soft: dict | None) -> dict[str, np.ndarray]:
    """Validate likelihood vectors against a network (no tree needed)."""
    out: dict[str, np.ndarray] = {}
    for name, vec in (soft or {}).items():
        if name not in net:
            raise EvidenceError(f"soft-evidence variable {name!r} not in network")
        var = net.variable(name)
        arr = np.asarray(vec, dtype=np.float64)
        if arr.shape != (var.cardinality,):
            raise EvidenceError(
                f"likelihood for {name!r} has shape {arr.shape}, expected "
                f"({var.cardinality},)"
            )
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise EvidenceError(f"likelihood for {name!r} must be non-negative/finite")
        if arr.sum() <= 0.0:
            raise EvidenceError(f"likelihood for {name!r} is identically zero")
        out[name] = arr
    return out


class ApproxBNI:
    """Adaptive sampling engine with the exact engines' calling convention.

    Parameters
    ----------
    method:
        ``"lw"`` (batched likelihood weighting, the serving default — it
        vectorises across coalesced cases) or ``"gibbs"`` (multi-chain
        Gibbs, better under very unlikely hard evidence).
    num_samples / max_samples:
        Starting and maximum population size of the doubling schedule.
    tolerance:
        Target worst-case per-state standard error; escalation stops once
        every requested posterior entry is below it.
    chains / burn_in / max_r_hat:
        Gibbs-only knobs: chain count, discarded warm-up sweeps per chain,
        and the split-R̂ threshold that must also be met before stopping.
    seed:
        Int, ``None`` or a ``numpy.random.Generator``; int seeds make every
        :meth:`infer` call reproducible in isolation.
    """

    #: Capability flags the service layers dispatch on.
    capabilities = APPROX_ENGINE

    def __init__(self, net: BayesianNetwork, method: str = "lw",
                 num_samples: int = 1024,
                 max_samples: int = DEFAULT_MAX_SAMPLES,
                 tolerance: float = 0.01, chains: int = 4,
                 burn_in: int = 200, max_r_hat: float = 1.1,
                 seed: "int | None | np.random.Generator" = 0) -> None:
        if method not in METHODS:
            raise BackendError(f"unknown approx method {method!r}; expected one of {METHODS}")
        if num_samples < 1 or max_samples < num_samples:
            raise BackendError(
                f"need 1 <= num_samples <= max_samples, got "
                f"{num_samples} and {max_samples}"
            )
        if tolerance <= 0.0:
            raise BackendError(f"tolerance must be positive, got {tolerance}")
        net.validate()
        self.net = net
        self.method = method
        self.num_samples = num_samples
        self.max_samples = max_samples
        self.tolerance = tolerance
        self.chains = chains
        self.burn_in = burn_in
        self.max_r_hat = max_r_hat
        self.seed = seed
        self._blankets: "dict[str, list[BlanketTerm]] | None" = None
        #: Instrumentation for the last call (escalation rounds, samples).
        self.metrics: dict[str, int] = {}

    # ----------------------------------------------------------------- naming
    @property
    def name(self) -> str:
        return f"approxbni-{self.method}"

    # ------------------------------------------------------------- validation
    def validate_case(self, evidence: dict | None = None,
                      soft_evidence: dict | None = None) -> None:
        """Check one request's evidence without sampling (protocol hook)."""
        check_net_evidence(self.net, evidence)
        if soft_evidence:
            check_net_soft_evidence(self.net, soft_evidence)

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Nothing to release (no pools, no shared memory); kept for symmetry."""

    def __enter__(self) -> "ApproxBNI":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ---------------------------------------------------------------- running
    def infer(
        self,
        evidence: dict[str, str | int] | None = None,
        targets: tuple[str, ...] = (),
        soft_evidence: dict | None = None,
    ) -> ApproxInferenceResult:
        """One approximate inference pass with adaptive escalation.

        ``evidence`` maps variable names to state labels/indices (hard
        observations); ``soft_evidence`` maps them to likelihood vectors
        (one non-negative weight per state).  The population doubles until
        the worst per-state standard error of the requested ``targets``
        drops below ``tolerance`` or ``max_samples`` is reached.  Raises
        :class:`~repro.errors.EvidenceError` for unknown names/states,
        malformed likelihood vectors, or evidence that kills every
        particle weight; :class:`~repro.errors.QueryError` for unknown
        targets.
        """
        return self.infer_cases(
            [evidence or {}], targets=targets,
            soft_cases=[soft_evidence],
        ).case(0)

    def infer_batch(
        self,
        cases,
        case_workers: int = 1,
        targets: tuple[str, ...] = (),
        vectorized: bool = True,
    ) -> "list[ApproxInferenceResult]":
        """Run a batch of test cases (``TestCase`` or evidence dicts).

        The LW method shares one particle population across all cases in a
        single vectorised pass (``case_workers`` is accepted for interface
        compatibility and ignored — there is no per-case loop to spread).
        """
        from repro.core.batch import case_evidence, case_soft_evidence

        cases = list(cases)
        if not cases:
            return []
        return list(self.infer_cases(
            [case_evidence(c) for c in cases], targets=targets,
            soft_cases=[case_soft_evidence(c) for c in cases],
        ))

    def infer_cases(
        self,
        cases: "list[dict]",
        targets: tuple[str, ...] = (),
        soft_cases: "list[dict | None] | None" = None,
    ) -> ApproxBatchResult:
        """Vectorised multi-case entry point (the micro-batcher's hook).

        All ``cases`` (evidence dicts, optionally paired with per-case
        ``soft_cases`` likelihood dicts) share **one** particle
        population per escalation round — common random numbers, one
        topological pass — so K coalesced cases cost far less than K
        :meth:`infer` calls.  Raises on an empty case list and propagates
        the same error classes as :meth:`infer`; an all-zero-weight case
        is retried with a doubled population before the whole flush
        fails.
        """
        if not cases:
            raise EvidenceError("infer_cases needs at least one case")
        hard = [check_net_evidence(self.net, c) for c in cases]
        soft = [check_net_soft_evidence(self.net, s) or None
                for s in (soft_cases or [None] * len(cases))]
        for ev, sv in zip(hard, soft):
            overlap = set(ev) & set(sv or {})
            if overlap:
                raise EvidenceError(
                    f"soft evidence overlaps hard evidence: {sorted(overlap)}"
                )
        for name in targets:
            if name not in self.net:
                raise EvidenceError(f"unknown target variable {name!r}")
        if self.method == "gibbs":
            return ApproxBatchResult(
                [self._infer_gibbs(ev, sv, targets)
                 for ev, sv in zip(hard, soft)])
        return self._infer_lw(hard, soft, targets)

    def posteriors(self, targets, evidence: dict | None = None
                   ) -> dict[str, np.ndarray]:
        """Baseline-engine-style accessor (matches the oracle samplers)."""
        return self.infer(evidence, targets=tuple(targets)).posteriors

    def posterior(self, target: str, evidence: dict | None = None) -> np.ndarray:
        """``P(target | evidence)`` as a probability vector (sampled)."""
        return self.posteriors((target,), evidence)[target]

    #: Doublings granted to an all-zero-weight case before giving up:
    #: truly impossible evidence never recovers, so once the live cases
    #: are satisfied the dead ones must not burn the rest of the budget
    #: (they will raise EvidenceError below regardless).
    DEAD_CASE_ROUNDS = 2

    # --------------------------------------------------------------------- LW
    def _infer_lw(self, hard, soft, targets) -> ApproxBatchResult:
        rng = as_rng(self.seed)
        names = tuple(targets) or self.net.variable_names
        total = self.num_samples
        acc = sample_population(self.net, total, hard, soft, rng, names)
        rounds = 1
        while total < self.max_samples:
            dead = bool(np.any(acc.total_w <= 0.0))
            worst = self._worst_se(acc, names)
            if worst <= self.tolerance and (
                    not dead or rounds >= self.DEAD_CASE_ROUNDS):
                break
            add = min(total, self.max_samples - total)
            acc.merge(sample_population(self.net, add, hard, soft, rng, names))
            total += add
            rounds += 1
        self.metrics = {"samples": total, "rounds": rounds}
        if np.any(acc.total_w <= 0.0):
            dead = [i for i, w in enumerate(acc.total_w) if w <= 0.0]
            raise EvidenceError(
                f"all particles have zero weight for case(s) {dead} "
                "(evidence has zero or vanishing probability)"
            )
        ess = acc.ess()
        log_ev = acc.log_evidence()
        # Batch arrays computed once, then row-indexed per case (stderr
        # internally recomputes the posterior, so hoisting both out of the
        # case loop avoids O(K²) work on the serving hot path).
        batch_post = {n: acc.posterior(n) for n in names}
        batch_se = {n: acc.stderr(n) for n in names}
        results = []
        for i in range(len(hard)):
            results.append(ApproxInferenceResult(
                posteriors={n: batch_post[n][i] for n in names},
                log_evidence=float(log_ev[i]),
                stderr={n: batch_se[n][i] for n in names},
                ess=float(ess[i]),
                num_samples=acc.num_samples,
                method="lw",
                meta={"rounds": float(rounds)},
            ))
        return ApproxBatchResult(results)

    @staticmethod
    def _worst_se(acc: LWAccumulator, names) -> float:
        """Worst finite SE (zero-weight cases report inf — handled apart)."""
        worst = 0.0
        for n in names:
            se = acc.stderr(n)
            finite = se[np.isfinite(se)]
            if finite.size:
                worst = max(worst, float(finite.max()))
        return worst

    # ------------------------------------------------------------------ Gibbs
    def _infer_gibbs(self, evidence: dict[str, int],
                     soft: dict | None,
                     targets: tuple[str, ...]) -> ApproxInferenceResult:
        if self._blankets is None:
            self._blankets = compile_blankets(self.net)
        names = tuple(targets) or self.net.variable_names
        sampler = GibbsSampler(
            self.net, evidence, soft, chains=self.chains,
            burn_in=self.burn_in, rng=as_rng(self.seed),
            blankets=self._blankets,
        )
        per_chain = max(2, math.ceil(self.num_samples / self.chains))
        sampler.extend(per_chain)
        rounds = 1
        while sampler.draws * self.chains < self.max_samples:
            diag = sampler.diagnostics(names)
            if (diag.max_r_hat() <= self.max_r_hat
                    and self._worst_gibbs_se(diag) <= self.tolerance):
                break
            sampler.extend(sampler.draws)  # double the recorded draws
            rounds += 1
        diag = sampler.diagnostics(names)
        total = sampler.draws * self.chains
        self.metrics = {"samples": total, "rounds": rounds}
        posteriors: dict[str, np.ndarray] = {}
        stderr: dict[str, np.ndarray] = {}
        for n in names:
            posteriors[n] = sampler.posterior(n)
            if n in sampler.evidence:
                stderr[n] = np.zeros_like(posteriors[n])
            else:
                stderr[n] = diag.stderr[n]
        return ApproxInferenceResult(
            posteriors=posteriors,
            # MCMC does not estimate the evidence likelihood.
            log_evidence=float("nan"),
            stderr=stderr,
            ess=diag.ess,
            num_samples=total,
            method="gibbs",
            r_hat=diag.max_r_hat(),
            meta={"rounds": float(rounds)},
        )

    @staticmethod
    def _worst_gibbs_se(diag) -> float:
        vals = [float(se.max()) for se in diag.stderr.values() if se.size]
        return max(vals) if vals else 0.0

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict[str, float]:
        """Engine configuration summary (the service ``info`` op body)."""
        return {
            "num_samples": float(self.num_samples),
            "max_samples": float(self.max_samples),
            "tolerance": self.tolerance,
            "variables": float(self.net.num_variables),
            "cpt_entries": float(self.net.total_cpt_entries()),
        }

    def estimate_resident_bytes(self) -> int:
        """Registry footprint: CPTs + one peak particle population.

        State columns are freed at their last use during a pass
        (:mod:`repro.approx.lw`), so the live working set is bounded by a
        topological "active width", not by the variable count; 32 columns
        is a generous bound for the windowed/anatomical structures served
        here.
        """
        n = 8 * self.net.total_cpt_entries()
        n += 16 * self.max_samples  # weight + squared-weight rows at peak
        active = min(self.net.num_variables, 32)
        n += 8 * active * self.max_samples  # live (N,) state columns
        return n
