"""Command-line interface: ``fastbni <subcommand>``.

Subcommands regenerate every table/figure of the evaluation:

* ``table1``      — the paper's Table 1 (all engines × all networks);
* ``scaling``     — Fig A thread-count sweep;
* ``granularity`` — Fig B inter/intra/hybrid across JT structures;
* ``root``        — Fig C root-selection ablation;
* ``primitives``  — Fig D table-operation microbenchmarks;
* ``overhead``    — Fig E small-vs-large parallel overhead;
* ``info``        — network/junction-tree statistics;
* ``query``       — run one inference on a bundled or analog network, or a
  whole case batch in one vectorised calibration pass (``--batch``);
  ``--engine exact|approx|auto`` picks the junction tree, the adaptive
  sampler, or lets the cost planner decide;
* ``frontier``    — exact-vs-approx accuracy/latency frontier
  (``BENCH_approx.json``);
* ``execbench``   — kernel-backend benchmark, fused vs numpy over the
  shared execution plan (``BENCH_exec.json``, guarded in CI by
  ``tools/check_bench.py``);
* ``sessions``    — streaming-session speedup vs evidence overlap
  (session-mode update+query against equivalent cold queries, writes
  ``BENCH_sessions.json``);
* ``serve``       — long-lived inference server (compiled-model registry +
  dynamic micro-batching + exact/approx query planner + streaming
  evidence sessions, JSON-lines over TCP; ``--trace-sample-rate`` turns
  on sampled request tracing);
* ``client``      — query a running server (one-shot, scriptable; the
  ``session_*`` ops drive streaming sessions, ``session_demo`` runs a
  scripted open→update→retract→close walk, ``metrics`` prints the
  Prometheus exposition and ``slow_queries`` the slow-query log);
* ``trace``       — fetch a running server's sampled traces and write
  them as Chrome trace-event JSON (open in chrome://tracing/Perfetto);
* ``obsbench``    — observability-overhead benchmark: throughput with
  tracing disabled/sampled/full vs a no-instrumentation baseline
  (``BENCH_obs.json``, guarded in CI by ``tools/check_bench.py --obs``).
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.bn.repository import PAPER_NETWORKS
from repro.exec.kernels import KERNELS


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.bench.table1 import run_table1

    networks = tuple(args.networks) if args.networks else PAPER_NETWORKS
    sweep = tuple(int(t) for t in args.threads.split(","))
    run_table1(networks=networks, num_cases=args.cases, sweep=sweep)


def _cmd_scaling(args: argparse.Namespace) -> None:
    from repro.bench.ablations import render_thread_scaling, thread_scaling

    threads = tuple(int(t) for t in args.threads.split(","))
    results = thread_scaling(args.network, threads=threads,
                             num_cases=args.cases, mode=args.mode)
    print(render_thread_scaling(results, args.network))


def _cmd_granularity(args: argparse.Namespace) -> None:
    from repro.bench.ablations import granularity_study, render_granularity

    print(render_granularity(granularity_study(num_workers=args.workers)))


def _cmd_root(args: argparse.Namespace) -> None:
    from repro.bench.ablations import render_root_selection, root_selection_study

    networks = tuple(args.networks) if args.networks else PAPER_NETWORKS
    print(render_root_selection(root_selection_study(networks=networks)))


def _cmd_primitives(args: argparse.Namespace) -> None:
    from repro.bench.microbench import run_microbench

    print(run_microbench(num_workers=args.workers))


def _cmd_overhead(args: argparse.Namespace) -> None:
    from repro.bench.ablations import overhead_study, render_overhead

    print(render_overhead(overhead_study(num_workers=args.workers), args.workers))


def _load_any(name: str):
    from repro.bn.repository import resolve_network
    from repro.errors import NetworkError

    try:
        return resolve_network(name)
    except NetworkError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_frontier(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro.bench.frontier import render_frontier, run_frontier, write_frontier

    networks = tuple(args.networks) if args.networks else None
    samples = tuple(int(n) for n in args.samples.split(","))
    kwargs = {"sample_counts": samples, "num_cases": args.cases,
              "seed": args.seed}
    if networks:
        kwargs["networks"] = networks
    rows = run_frontier(**kwargs)
    print(render_frontier(rows))
    if args.out:
        write_frontier(rows, Path(args.out))
        print(f"wrote {args.out}")


def _cmd_incremental(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro.bench.incremental import (render_incremental, run_incremental,
                                         write_incremental)

    overlaps = tuple(float(o) for o in args.overlaps.split(","))
    report = run_incremental(network=args.network, overlaps=overlaps,
                             num_queries=args.queries,
                             evidence_vars=args.evidence_vars, seed=args.seed)
    print(render_incremental(report))
    if args.out:
        write_incremental(report, Path(args.out))
        print(f"wrote {args.out}")


def _cmd_sessions(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro.bench.sessions import (render_sessions, run_sessions,
                                      write_sessions)

    overlaps = tuple(float(o) for o in args.overlaps.split(","))
    report = run_sessions(network=args.network, overlaps=overlaps,
                          num_queries=args.queries,
                          evidence_vars=args.evidence_vars, seed=args.seed)
    print(render_sessions(report))
    if args.out:
        write_sessions(report, Path(args.out))
        print(f"wrote {args.out}")


def _cmd_execbench(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro.bench.execbench import (render_execbench, run_execbench,
                                       write_execbench)

    report = run_execbench(network=args.network, num_cases=args.cases,
                           repeats=args.repeats, seed=args.seed)
    print(render_execbench(report))
    if args.out:
        write_execbench(report, Path(args.out))
        print(f"wrote {args.out}")


def _cmd_heuristics(args: argparse.Namespace) -> None:
    from repro.bench.ablations import heuristic_study, render_heuristics

    networks = tuple(args.networks) if args.networks else PAPER_NETWORKS
    print(render_heuristics(heuristic_study(networks=networks)))


def _cmd_info(args: argparse.Namespace) -> None:
    from repro.jt.layers import compute_layers
    from repro.jt.root import select_root
    from repro.jt.structure import compile_junction_tree

    from repro.exec.plan import compile_plan

    net = _load_any(args.network)
    print(net.summary())
    tree = compile_junction_tree(net)
    select_root(tree, "center")
    schedule = compute_layers(tree)
    stats = tree.stats()
    stats["num_layers"] = schedule.num_layers
    stats.update(compile_plan(tree, schedule).stats())
    for k, v in stats.items():
        print(f"  {k}: {v}")


def _parse_evidence_arg(text: str):
    """``--evidence`` JSON: a dict (one case) or a list of dicts (a batch)."""
    if not text:
        return {}
    try:
        value = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: --evidence is not valid JSON: {exc}")
    if isinstance(value, dict):
        return value
    if isinstance(value, list) and all(isinstance(e, dict) for e in value):
        return value
    raise SystemExit(
        "error: --evidence must be a JSON object (one case) or a JSON list "
        f"of objects (a batch), got {type(value).__name__}"
    )


def _make_query_engine(args: argparse.Namespace, net):
    """Build the engine ``query --engine`` selects (planner decides auto)."""
    from repro.approx import ApproxBNI, QueryPlanner
    from repro.core import FastBNI

    choice = args.engine
    decision = None
    if choice == "auto":
        decision = QueryPlanner().plan(net)
        choice = decision.engine
    if choice == "approx":
        from repro.approx.engine import DEFAULT_MAX_SAMPLES

        if decision is not None:
            print(f"# planner: {decision.reason}")
        return ApproxBNI(net, method=args.method, num_samples=args.samples,
                         max_samples=max(args.samples, DEFAULT_MAX_SAMPLES),
                         tolerance=args.tolerance, seed=args.seed)
    return FastBNI(net, mode=args.mode, backend=args.backend,
                   num_workers=args.workers, kernels=args.kernels)


def _cmd_query(args: argparse.Namespace) -> None:
    from repro.errors import ReproError
    from repro.jt.evidence_soft import split_evidence

    net = _load_any(args.network)
    evidence = _parse_evidence_arg(args.evidence)
    try:
        if args.batch or isinstance(evidence, list):
            _run_batch_query(args, net, evidence)
            return
        # Scalar values are hard observations, list values soft likelihood
        # vectors: --evidence '{"smoke": "yes", "xray": [0.7, 0.3]}'.
        hard, soft = split_evidence(evidence)
        with _make_query_engine(args, net) as engine:
            result = engine.infer(hard, soft_evidence=soft or None)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    stderr = getattr(result, "stderr", None)
    targets = args.targets.split(",") if args.targets else list(net.variable_names)[:10]
    for name in targets:
        var = net.variable(name)
        dist = ", ".join(f"{s}={p:.4f}" for s, p in zip(var.states, result.posteriors[name]))
        if stderr is not None and name in stderr:
            dist += f"  (±{float(stderr[name].max()):.4f})"
        print(f"P({name} | e) = [{dist}]")
    # Gibbs results carry no P(e) estimate (NaN): print n/a, not "nan".
    log_ev = result.log_evidence
    print(f"log P(e) = {log_ev:.6f}" if math.isfinite(log_ev)
          else "log P(e) = n/a")
    if stderr is not None:
        print(f"approx: ess = {result.ess:.0f}, samples = {result.num_samples}, "
              f"method = {result.method}")


def _run_batch_query(args: argparse.Namespace, net, evidence) -> None:
    """``query --batch``: vectorised multi-case inference in one pass.

    The case batch is either the JSON *list* of evidence dicts passed via
    ``--evidence``, or ``--batch N`` randomly generated cases (the paper's
    workload recipe: 20% observed variables, seeded by ``--seed``).
    """
    import time

    from repro.bn.sampling import TestCase, generate_test_cases
    from repro.core import BatchedFastBNI, FastBNI
    from repro.jt.evidence_soft import split_evidence

    if isinstance(evidence, list):
        split = [split_evidence(dict(e)) for e in evidence]
        cases = [TestCase(evidence=hard, soft_evidence=soft or None)
                 for hard, soft in split]
    elif evidence:
        raise SystemExit(
            "query --batch generates random cases and would ignore the given "
            "--evidence dict; pass --evidence as a JSON list of per-case "
            "dicts to batch specific evidence"
        )
    else:
        cases = [c.evidence for c in generate_test_cases(
            net, args.batch, observed_fraction=0.2, rng=args.seed)]
    targets = tuple(args.targets.split(",")) if args.targets else ()
    if args.engine == "exact":
        chosen = BatchedFastBNI(net, mode=args.mode, backend=args.backend,
                                num_workers=args.workers, kernels=args.kernels)
    else:
        chosen = _make_query_engine(args, net)
        if isinstance(chosen, FastBNI):
            # Planner picked exact: the batch path wants the case-axis-
            # vectorised engine, not the per-case FastBNI.
            chosen.close()
            chosen = BatchedFastBNI(net, mode=args.mode, backend=args.backend,
                                    num_workers=args.workers,
                                    kernels=args.kernels)
    approx = not isinstance(chosen, BatchedFastBNI)
    with chosen as engine:
        start = time.perf_counter()
        # The exact engine's vectorised default falls back to the per-case
        # loop when any case carries soft evidence; the approx engine
        # shares one particle population across all cases either way.
        results = engine.infer_batch(cases, targets=targets)
        elapsed = time.perf_counter() - start
        blocks = int(engine.metrics.get("batch_blocks", 0))
    n = len(results)
    if approx:
        detail = " (one shared particle population)"
    else:
        detail = f", {blocks} case blocks" if blocks else " (per-case fallback)"
    print(f"batched {n} cases in {elapsed * 1e3:.1f} ms "
          f"({elapsed / max(n, 1) * 1e3:.2f} ms/case{detail})")
    shown = targets[:1] or list(net.variable_names)[:1]
    for i in range(min(n, 10)):
        case = results[i]
        name = shown[0]
        var = net.variable(name)
        dist = ", ".join(f"{s}={p:.4f}"
                         for s, p in zip(var.states, case.posteriors[name]))
        log_ev = (f"{case.log_evidence:.6f}"
                  if math.isfinite(case.log_evidence) else "n/a")
        extra = ""
        if approx:
            extra = f"   ess = {case.ess:.0f}"
        print(f"  case {i}: log P(e) = {log_ev}   "
              f"P({name} | e) = [{dist}]{extra}")
    if n > 10:
        print(f"  ... {n - 10} more cases")


def _cmd_serve(args: argparse.Namespace) -> None:
    import asyncio

    from repro.approx.engine import DEFAULT_MAX_SAMPLES
    from repro.service.server import run_server

    preload = tuple(n.strip() for n in args.preload.split(",") if n.strip())

    def on_ready(server) -> None:
        models = ", ".join(preload) if preload else "none"
        print(f"fastbni inference server listening on "
              f"{server.host}:{server.port} "
              f"(max_batch={args.max_batch}, max_wait_ms={args.max_wait_ms}, "
              f"preloaded: {models})", flush=True)

    try:
        # On SIGINT asyncio.Runner cancels the main task; run_server absorbs
        # the cancellation and drains/stops cleanly, so asyncio.run usually
        # returns normally rather than raising KeyboardInterrupt.
        asyncio.run(run_server(
            args.host, args.port,
            preload=preload,
            on_ready=on_ready,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            cache_dir=args.cache_dir or None,
            max_bytes=int(args.max_mb * 1024 * 1024),
            policy=args.policy,
            max_exact_bytes=int(args.max_exact_mb * 1024 * 1024),
            approx_options={"num_samples": args.approx_samples,
                            "max_samples": max(args.approx_samples,
                                               DEFAULT_MAX_SAMPLES),
                            "tolerance": args.approx_tolerance},
            cache=args.cache == "on",
            cache_options={
                "max_states": args.cache_states,
                "max_bytes": int(args.cache_mb * 1024 * 1024),
                "min_overlap": args.cache_min_overlap,
            },
            max_sessions=args.max_sessions,
            session_ttl_s=args.session_ttl,
            session_max_bytes=int(args.session_mb * 1024 * 1024),
            session_cold=args.sessions == "cold",
            trace_sample_rate=args.trace_sample_rate,
            trace_buffer=args.trace_buffer,
            trace_slow_ms=args.trace_slow_ms,
            trace_slow_log=args.trace_slow_log,
            mode=args.mode, backend=args.backend, num_workers=args.workers,
            kernels=args.kernels,
        ))
    except KeyboardInterrupt:
        pass
    print("server stopped")


def _cmd_cluster(args: argparse.Namespace) -> None:
    import asyncio
    import os

    from repro.cluster.router import reload_argv, run_cluster

    preload = tuple(n.strip() for n in args.preload.split(",") if n.strip())
    # Worker knobs must cross a process boundary as JSON (the supervisor
    # passes them via --options-json), so only plain values go here.
    worker_options = {
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "policy": args.policy,
        "cache": args.cache == "on",
        "max_bytes": int(args.max_mb * 1024 * 1024),
        "kernels": args.kernels,
    }

    def on_ready(router) -> None:
        models = ", ".join(preload) if preload else "none"
        print(f"fastbni cluster router listening on "
              f"{router.host}:{router.port} "
              f"({args.workers} workers, max_inflight={args.max_inflight}, "
              f"preloaded: {models})", flush=True)

    try:
        reload_requested = asyncio.run(run_cluster(
            args.host, args.port,
            workers=args.workers,
            preload=preload,
            worker_options=worker_options,
            on_ready=on_ready,
            max_inflight=args.max_inflight,
            replicate_hot_qps=args.replicate_hot,
            drain_timeout_s=args.drain_timeout,
        ))
    except KeyboardInterrupt:
        reload_requested = False
    if reload_requested:
        argv = reload_argv()
        print(f"cluster drained; exec-reloading: {' '.join(argv[1:])}",
              flush=True)
        os.execv(argv[0], argv)
    print("cluster stopped")


def _cmd_clusterbench(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro.bench.cluster import (render_cluster, run_cluster_bench,
                                     write_cluster)

    report = run_cluster_bench(network=args.network, requests=args.requests,
                               workers=args.workers,
                               concurrency=args.concurrency,
                               repeats=args.repeats)
    print(render_cluster(report))
    if args.out:
        write_cluster(report, Path(args.out))
        print(f"wrote {args.out}")


def _run_session_demo(client, args: argparse.Namespace) -> None:
    """Scripted streaming walk: open → add findings → retract → close."""
    net = _load_any(args.network)
    names = list(net.variable_names)
    target = args.targets.split(",")[0] if args.targets else names[-1]
    steps = [n for n in names if n != target][:3]
    with client.session(args.network, engine=args.engine or None) as sess:
        print(f"opened session {sess.id} on {args.network}")
        for name in steps:
            state = net.variable(name).states[0]
            r = sess.update({name: state}, targets=[target])
            probs = ", ".join(f"{p:.4f}" for p in r["posteriors"][target])
            print(f"  +{name}={state}: delta size {r['delta']['size']}, "
                  f"P({target} | e) = [{probs}]")
        r = sess.update(retract=[steps[0]], targets=[target])
        probs = ", ".join(f"{p:.4f}" for p in r["posteriors"][target])
        print(f"  -{steps[0]}: delta size {r['delta']['size']}, "
              f"P({target} | e) = [{probs}]")
    print("session closed")


def _cmd_trace(args: argparse.Namespace) -> None:
    """Fetch the server's sampled traces as Chrome trace-event JSON."""
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient

    try:
        with ServiceClient(args.host, args.port,
                           connect_retry_s=args.connect_timeout) as client:
            dump = client.trace_dump()
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}")
    count = dump.pop("traceCount", 0)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(dump, fh)
    print(f"wrote {len(dump.get('traceEvents', []))} events from {count} "
          f"traces to {args.out} (open in chrome://tracing or Perfetto)")
    if count == 0:
        print("note: no traces buffered — serve with --trace-sample-rate > 0")


def _cmd_obsbench(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro.bench.obs import render_obs, run_obs, write_obs

    report = run_obs(network=args.network, requests=args.requests,
                     concurrency=args.concurrency, repeats=args.repeats,
                     seed=args.seed)
    print(render_obs(report))
    if args.out:
        write_obs(report, Path(args.out))
        print(f"wrote {args.out}")


def _parse_mix_arg(raw: str) -> dict | None:
    """Parse ``zipf=0.4,burst=0.2,...`` into a mix dict (None if empty)."""
    if not raw:
        return None
    mix: dict[str, float] = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise SystemExit(f"error: bad mix entry {part!r}; "
                             "expected stream=fraction")
        key, _, value = part.partition("=")
        try:
            mix[key.strip()] = float(value)
        except ValueError:
            raise SystemExit(f"error: bad mix fraction {value!r}") from None
    return mix or None


def _parse_dense_arg(raw: str, seed: int) -> dict | None:
    """Parse ``ROWSxCOLS[xCARD]`` into a grid dense_spec (None if empty)."""
    if not raw:
        return None
    parts = raw.lower().split("x")
    if len(parts) not in (2, 3) or not all(p.strip().isdigit()
                                           for p in parts):
        raise SystemExit(f"error: bad dense grid {raw!r}; "
                         "expected ROWSxCOLS or ROWSxCOLSxCARD")
    rows, cols = int(parts[0]), int(parts[1])
    card = int(parts[2]) if len(parts) == 3 else 2
    return {"kind": "grid", "rows": rows, "cols": cols, "card": card,
            "seed": seed}


def _trace_kwargs(args: argparse.Namespace) -> dict:
    """Generator overrides shared by ``workload`` and ``ablate``."""
    kwargs: dict = {}
    mix = _parse_mix_arg(args.mix)
    if mix:
        kwargs["mix"] = mix
    if args.zipf_network:
        kwargs["zipf_network"] = args.zipf_network
    dense = _parse_dense_arg(args.dense_grid, args.seed)
    if dense:
        kwargs["dense_spec"] = dense
    if args.dense_observed >= 0:
        kwargs["dense_observed_fraction"] = args.dense_observed
    return kwargs


def _cmd_workload(args: argparse.Namespace) -> None:
    import asyncio

    from repro.bench.traffic import (TrafficRecorder, generate_trace,
                                     load_trace, render_trace, replay_trace,
                                     save_trace)

    if args.record:
        async def record() -> None:
            recorder = TrafficRecorder(args.host, args.port,
                                       port=args.listen_port)
            await recorder.start()
            print(f"recording {args.host}:{args.port} via proxy port "
                  f"{recorder.port} for {args.duration:.0f}s", flush=True)
            try:
                await asyncio.sleep(args.duration)
            finally:
                await recorder.stop()
            trace = recorder.trace(seed=args.seed)
            print(render_trace(trace))
            if args.out:
                save_trace(trace, args.out)
                print(f"wrote {args.out}")

        try:
            asyncio.run(record())
        except KeyboardInterrupt:
            pass
        return

    if args.replay:
        trace = load_trace(args.replay)
        print(render_trace(trace))
        result = replay_trace(trace, args.host, args.port,
                              concurrency=args.concurrency, pace=args.pace)
        summary = result.summary()
        print(f"replayed {summary['requests']} requests in "
              f"{summary['elapsed_s']:.2f}s: {summary['rps']:.1f} req/s, "
              f"p50 {summary['p50_ms']:.2f} ms, "
              f"p99 {summary['p99_ms']:.2f} ms, "
              f"errors {summary['errors']}")
        if summary["errors"]:
            for idx, error in result.errors[:10]:
                print(f"  event {idx}: {error}")
            raise SystemExit(1)
        return

    trace = generate_trace(seed=args.seed, requests=args.requests,
                           network=args.network,
                           session_network=args.session_network or None,
                           **_trace_kwargs(args))
    print(render_trace(trace))
    if args.out:
        save_trace(trace, args.out)
        print(f"wrote {args.out}")


def _cmd_ablate(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro.bench.ablation_matrix import (COMPONENTS, render_ablation,
                                             run_ablation, write_ablation)
    from repro.bench.traffic import load_trace

    components = ([c.strip() for c in args.components.split(",") if c.strip()]
                  if args.components else None)
    if components:
        unknown = [c for c in components if c not in COMPONENTS]
        if unknown:
            raise SystemExit(f"error: unknown components {unknown}; "
                             f"known: {sorted(COMPONENTS)}")
    trace = load_trace(args.trace) if args.trace else None
    kwargs = _trace_kwargs(args)
    report = run_ablation(
        trace,
        components=components,
        seed=args.seed, requests=args.requests,
        network=args.network,
        session_network=args.session_network or None,
        repeats=args.repeats, concurrency=args.concurrency,
        max_exact_bytes=int(args.max_exact_mb * 1024 * 1024),
        trace_kwargs=kwargs or None)
    print(render_ablation(report))
    if args.out:
        write_ablation(report, Path(args.out))
        print(f"wrote {args.out}")


def _cmd_client(args: argparse.Namespace) -> None:
    from repro.errors import ReproError, ServiceError
    from repro.service.client import ServiceClient

    evidence = _parse_evidence_arg(args.evidence)
    targets = [t for t in args.targets.split(",") if t] if args.targets else None
    engine = args.engine or None
    needs_network = args.op not in ("health", "stats", "stats_reset",
                                    "cache_stats", "metrics", "slow_queries",
                                    "trace_dump", "session_update",
                                    "session_query", "session_close",
                                    "cluster_stats", "cluster_drain")
    if needs_network and not args.network:
        raise SystemExit(f"error: op {args.op!r} requires a network argument")
    needs_session = args.op in ("session_update", "session_query",
                                "session_close")
    if needs_session and not args.session:
        raise SystemExit(f"error: op {args.op!r} requires --session <id>")
    retract = ([t for t in args.retract.split(",") if t]
               if args.retract else None)
    try:
        with ServiceClient(args.host, args.port,
                           connect_retry_s=args.connect_timeout,
                           retries=args.retries,
                           retry_backoff_s=args.retry_backoff) as client:
            if args.op == "query":
                result = client.query(args.network, evidence or None,
                                      targets=targets, engine=engine)
            elif args.op == "query_batch":
                if not isinstance(evidence, list):
                    raise SystemExit("error: op query_batch needs --evidence "
                                     "as a JSON list of per-case objects")
                result = client.query_batch(args.network, evidence,
                                            targets=targets, engine=engine)
            elif args.op == "mpe":
                result = client.mpe(args.network, evidence or None,
                                    engine=engine)
            elif args.op == "info":
                result = client.info(args.network, engine=engine)
            elif args.op == "session_demo":
                _run_session_demo(client, args)
                return
            elif args.op == "session_open":
                result = client.session_open(args.network, evidence or None,
                                             engine=engine)
            elif args.op == "session_update":
                result = client.session_update(args.session, evidence or None,
                                               retract=retract,
                                               replace=args.replace,
                                               targets=targets)
            elif args.op == "session_query":
                result = client.session_query(args.session, targets=targets)
            elif args.op == "session_close":
                result = client.session_close(args.session)
            elif args.op == "metrics" and not args.json:
                # The exposition text is the deliverable: print it raw
                # (scrapeable), not wrapped in a JSON envelope.
                print(client.metrics(), end="")
                return
            else:
                result = client.call(args.op)
    except ServiceError as exc:
        if args.json:
            error = {"type": exc.error_type or "ServiceError",
                     "message": str(exc)}
            code = getattr(exc, "code", None)
            if code is not None:
                error["code"] = code
            print(json.dumps({"ok": False, "error": error}))
            raise SystemExit(1)
        raise SystemExit(f"error: {exc}")
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(json.dumps({"ok": True, "result": result}))
        return
    if args.op == "query":
        stderrs = result.get("stderr") or {}
        for name, probs in result["posteriors"].items():
            dist = ", ".join(f"{p:.4f}" for p in probs)
            suffix = ""
            if name in stderrs:
                suffix = f"  (±{max(stderrs[name]):.4f})"
            print(f"P({name} | e) = [{dist}]{suffix}")
        log_ev = result.get("log_evidence")
        log_ev_text = f"{log_ev:.6f}" if log_ev is not None else "n/a"
        print(f"log P(e) = {log_ev_text}   "
              f"(served by: {result['served_by']}, "
              f"engine: {result.get('engine', 'exact')})")
        if result.get("engine") == "approx":
            print(f"approx: ess = {result['ess']:.0f}, "
                  f"samples = {result['num_samples']}")
    else:
        print(json.dumps(result, indent=2, default=str))


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``fastbni`` argument parser (one sub-command per figure)."""
    p = argparse.ArgumentParser(prog="fastbni", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="reproduce the paper's Table 1")
    t1.add_argument("--networks", nargs="*", choices=PAPER_NETWORKS)
    t1.add_argument("--cases", type=int, default=None,
                    help="test cases per network (default: per-network preset)")
    t1.add_argument("--threads", default="1,2,4,8",
                    help="comma-separated thread sweep (paper: 1..32)")
    t1.set_defaults(func=_cmd_table1)

    sc = sub.add_parser("scaling", help="Fig A: thread scaling")
    sc.add_argument("--network", default="munin4", choices=PAPER_NETWORKS)
    sc.add_argument("--threads", default="1,2,4,8,16,32")
    sc.add_argument("--cases", type=int, default=None)
    sc.add_argument("--mode", default="hybrid", choices=("hybrid", "inter", "intra"))
    sc.set_defaults(func=_cmd_scaling)

    gr = sub.add_parser("granularity", help="Fig B: granularity vs structure")
    gr.add_argument("--workers", type=int, default=8)
    gr.set_defaults(func=_cmd_granularity)

    rt = sub.add_parser("root", help="Fig C: root selection ablation")
    rt.add_argument("--networks", nargs="*", choices=PAPER_NETWORKS)
    rt.set_defaults(func=_cmd_root)

    pr = sub.add_parser("primitives", help="Fig D: table-op microbenchmarks")
    pr.add_argument("--workers", type=int, default=8)
    pr.set_defaults(func=_cmd_primitives)

    ov = sub.add_parser("overhead", help="Fig E: overhead vs network scale")
    ov.add_argument("--workers", type=int, default=8)
    ov.set_defaults(func=_cmd_overhead)

    he = sub.add_parser("heuristics",
                        help="extension: triangulation heuristic comparison")
    he.add_argument("--networks", nargs="*", choices=PAPER_NETWORKS)
    he.set_defaults(func=_cmd_heuristics)

    fr = sub.add_parser("frontier",
                        help="exact-vs-approx accuracy/latency frontier "
                             "(writes BENCH_approx.json)")
    fr.add_argument("--networks", nargs="*",
                    help="networks to sweep (default: the bundled three)")
    fr.add_argument("--samples", default="256,1024,4096",
                    help="comma-separated particle counts")
    fr.add_argument("--cases", type=int, default=8,
                    help="seeded evidence cases per network")
    fr.add_argument("--seed", type=int, default=2023)
    fr.add_argument("--out", default="BENCH_approx.json",
                    help="output JSON path ('' to skip writing)")
    fr.set_defaults(func=_cmd_frontier)

    inc = sub.add_parser("incremental",
                         help="delta-recalibration speedup vs evidence "
                              "overlap (writes BENCH_incremental.json)")
    inc.add_argument("--network", default="asia",
                     help="bundled/analog name or .bif path")
    inc.add_argument("--overlaps", default="0.0,0.25,0.5,0.75,0.9,1.0",
                     help="comma-separated evidence-overlap fractions")
    inc.add_argument("--queries", type=int, default=200,
                     help="chained queries per overlap row")
    inc.add_argument("--evidence-vars", type=int, default=4,
                     help="observed variables per query")
    inc.add_argument("--seed", type=int, default=2023)
    inc.add_argument("--out", default="BENCH_incremental.json",
                     help="output JSON path ('' to skip writing)")
    inc.set_defaults(func=_cmd_incremental)

    se = sub.add_parser("sessions",
                        help="streaming-session speedup vs evidence overlap "
                             "(writes BENCH_sessions.json)")
    se.add_argument("--network", default="diabetes",
                    help="bundled/analog name or .bif path")
    se.add_argument("--overlaps", default="0.5,0.75,0.9",
                    help="comma-separated evidence-overlap fractions")
    se.add_argument("--queries", type=int, default=80,
                    help="update+query steps per overlap row")
    se.add_argument("--evidence-vars", type=int, default=4,
                    help="observed variables per step")
    se.add_argument("--seed", type=int, default=2023)
    se.add_argument("--out", default="BENCH_sessions.json",
                    help="output JSON path ('' to skip writing)")
    se.set_defaults(func=_cmd_sessions)

    eb = sub.add_parser("execbench",
                        help="kernel-backend benchmark: fused vs numpy over "
                             "the shared plan (writes BENCH_exec.json)")
    eb.add_argument("--network", default="hailfinder",
                    help="bundled/analog name or .bif path")
    eb.add_argument("--cases", type=int, default=24,
                    help="seeded evidence cases (20%% observed)")
    eb.add_argument("--repeats", type=int, default=3,
                    help="timing repetitions (best-of)")
    eb.add_argument("--seed", type=int, default=2023)
    eb.add_argument("--out", default="BENCH_exec.json",
                    help="output JSON path ('' to skip writing)")
    eb.set_defaults(func=_cmd_execbench)

    info = sub.add_parser("info", help="network + junction tree statistics")
    info.add_argument("network")
    info.set_defaults(func=_cmd_info)

    q = sub.add_parser("query", help="run one inference (or a vectorised batch)")
    q.add_argument("network")
    q.add_argument("--evidence", default="",
                   help='JSON, e.g. \'{"smoke": "yes"}\'; a JSON *list* of '
                        "evidence dicts runs as one vectorised batch")
    q.add_argument("--batch", type=int, default=0,
                   help="generate N random cases (20%% observed) and run them "
                        "in one batched calibration pass")
    q.add_argument("--seed", type=int, default=2023,
                   help="RNG seed for --batch case generation and sampling")
    q.add_argument("--targets", default="", help="comma-separated query variables")
    q.add_argument("--engine", default="exact",
                   choices=("exact", "approx", "auto"),
                   help="engine class: exact junction tree, adaptive "
                        "sampling, or let the cost planner decide")
    q.add_argument("--method", default="lw", choices=("lw", "gibbs"),
                   help="approx sampler (likelihood weighting or Gibbs)")
    q.add_argument("--samples", type=int, default=1024,
                   help="starting particle count for --engine approx")
    q.add_argument("--tolerance", type=float, default=0.01,
                   help="target worst-case posterior standard error")
    q.add_argument("--mode", default="hybrid")
    q.add_argument("--backend", default="thread")
    q.add_argument("--workers", type=int, default=4)
    q.add_argument("--kernels", default="fused", choices=KERNELS,
                   help="whole-message kernel backend: fused flat-arena "
                        "passes (default), the numpy ndview reference, or "
                        "native GIL-free C calls (falls back to fused "
                        "when no C compiler is available); drives the seq "
                        "and batched paths — single queries need --mode "
                        "seq (parallel modes chunk their own kernels)")
    q.set_defaults(func=_cmd_query)

    sv = sub.add_parser("serve", help="run the resident inference server "
                                      "(registry + dynamic micro-batching)")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=7421,
                    help="TCP port (0 picks an ephemeral port)")
    sv.add_argument("--max-batch", type=int, default=64,
                    help="flush a network's queue at this many queued cases")
    sv.add_argument("--max-wait-ms", type=float, default=2.0,
                    help="flush after the oldest query waited this long")
    sv.add_argument("--cache-dir", default="",
                    help="directory for serialized junction-tree warm starts")
    sv.add_argument("--max-mb", type=float, default=256.0,
                    help="registry resident-set byte budget (LRU eviction)")
    sv.add_argument("--preload", default="",
                    help="comma-separated models to compile before serving")
    sv.add_argument("--policy", default="auto",
                    choices=("exact", "approx", "auto"),
                    help="default engine routing: exact junction trees, "
                         "sampling, or cost-planner auto (default)")
    sv.add_argument("--max-exact-mb", type=float, default=64.0,
                    help="auto policy: estimated JT table budget beyond "
                         "which a model is served by sampling")
    sv.add_argument("--approx-samples", type=int, default=1024,
                    help="starting particle count for approx-served models")
    sv.add_argument("--approx-tolerance", type=float, default=0.01,
                    help="target posterior standard error for approx answers")
    sv.add_argument("--cache", default="on", choices=("on", "off"),
                    help="two-tier incremental cache: repeated-evidence "
                         "queries re-propagate only the changed subtree "
                         "(default: on)")
    sv.add_argument("--cache-states", type=int, default=8,
                    help="calibrated base states kept per model")
    sv.add_argument("--cache-mb", type=float, default=32.0,
                    help="per-model cache byte budget (states + result "
                         "memo), charged against --max-mb")
    sv.add_argument("--cache-min-overlap", type=float, default=0.5,
                    help="evidence-overlap fraction below which a query "
                         "takes the cold vectorised path instead of the "
                         "delta path (0 forces delta always)")
    sv.add_argument("--max-sessions", type=int, default=256,
                    help="live streaming sessions; past this the "
                         "least-recently-used is evicted")
    sv.add_argument("--session-ttl", type=float, default=600.0,
                    help="idle seconds before a session is evicted "
                         "(0 disables the TTL sweep)")
    sv.add_argument("--session-mb", type=float, default=64.0,
                    help="total session byte budget (sessions also charge "
                         "their model's entry against --max-mb)")
    sv.add_argument("--sessions", default="warm", choices=("warm", "cold"),
                    help="'cold' disables warm per-session deltas: every "
                         "session op rebuilds state from scratch (the "
                         "ablation kill-switch; default: warm)")
    sv.add_argument("--trace-sample-rate", type=float, default=0.0,
                    help="fraction of requests carrying a full span trace "
                         "(deterministic every-Nth sampling; 0 = off, "
                         "1 = every request)")
    sv.add_argument("--trace-buffer", type=int, default=256,
                    help="sampled traces kept in the ring buffer "
                         "(trace_dump / fastbni trace read this window)")
    sv.add_argument("--trace-slow-ms", type=float, default=100.0,
                    help="latency threshold for the slow-query log "
                         "(tracks every request, sampled or not)")
    sv.add_argument("--trace-slow-log", type=int, default=32,
                    help="slow-query log size (top-K slowest over the "
                         "threshold; 0 disables the log)")
    sv.add_argument("--mode", default="seq",
                    help="engine mode for served models (default: seq — "
                         "throughput comes from batching, not worker pools)")
    sv.add_argument("--backend", default="thread")
    sv.add_argument("--workers", type=int, default=1)
    sv.add_argument("--kernels", default="fused", choices=KERNELS,
                    help="whole-message kernel backend for served models "
                         "(info/stats report the active one — native "
                         "degrades to fused without a C compiler)")
    sv.set_defaults(func=_cmd_serve)

    cu = sub.add_parser("cluster",
                        help="run a sharded cluster: front router + N "
                             "worker processes (same wire protocol as "
                             "serve)")
    cu.add_argument("--host", default="127.0.0.1")
    cu.add_argument("--port", type=int, default=7421,
                    help="router TCP port (0 picks an ephemeral port; "
                         "workers always bind ephemeral ports)")
    cu.add_argument("--workers", type=int, default=4,
                    help="worker processes (one serving core each)")
    cu.add_argument("--preload", default="",
                    help="comma-separated models every worker compiles "
                         "before the cluster reports ready")
    cu.add_argument("--replicate-hot", type=float, default=50.0,
                    help="replicate a model to one more worker per this "
                         "many live requests/s (0 disables hot "
                         "replication)")
    cu.add_argument("--max-inflight", type=int, default=64,
                    help="per-worker in-flight window; past it requests "
                         "are rejected with error.code=overloaded")
    cu.add_argument("--drain-timeout", type=float, default=30.0,
                    help="cluster_drain: seconds to wait for in-flight "
                         "requests before shutting down anyway")
    cu.add_argument("--max-batch", type=int, default=64,
                    help="per-worker micro-batcher flush size")
    cu.add_argument("--max-wait-ms", type=float, default=2.0,
                    help="per-worker micro-batcher wait bound")
    cu.add_argument("--policy", default="auto",
                    choices=("exact", "approx", "auto"))
    cu.add_argument("--cache", default="on", choices=("on", "off"),
                    help="per-worker two-tier incremental cache")
    cu.add_argument("--kernels", default="fused", choices=KERNELS,
                    help="per-worker kernel backend (each worker process "
                         "compiles/loads the native library from the "
                         "shared cache; degrades to fused without a C "
                         "compiler)")
    cu.add_argument("--max-mb", type=float, default=256.0,
                    help="per-worker registry byte budget")
    cu.set_defaults(func=_cmd_cluster)

    cl = sub.add_parser("client", help="query a running inference server")
    cl.add_argument("network", nargs="?",
                    help="model name or .bif path (not needed for "
                         "health/stats)")
    cl.add_argument("--op", default="query",
                    choices=("query", "query_batch", "mpe", "info",
                             "session_open", "session_update",
                             "session_query", "session_close",
                             "session_demo", "health", "stats",
                             "stats_reset", "cache_stats", "metrics",
                             "slow_queries", "trace_dump",
                             "cluster_stats", "cluster_drain"))
    cl.add_argument("--session", default="",
                    help="session id (from session_open) for the "
                         "session_update/session_query/session_close ops")
    cl.add_argument("--retract", default="",
                    help="session_update: comma-separated variables to "
                         "withdraw from the session's evidence")
    cl.add_argument("--replace", action="store_true",
                    help="session_update: replace the whole evidence set "
                         "instead of merging")
    cl.add_argument("--evidence", default="",
                    help='JSON; scalar values are hard evidence, lists are '
                         'soft likelihoods: \'{"smoke": "yes", '
                         '"xray": [0.7, 0.3]}\'')
    cl.add_argument("--targets", default="",
                    help="comma-separated query variables")
    cl.add_argument("--engine", default="",
                    choices=("", "exact", "approx", "auto"),
                    help="server-side engine routing for this request")
    cl.add_argument("--host", default="127.0.0.1")
    cl.add_argument("--port", type=int, default=7421)
    cl.add_argument("--connect-timeout", type=float, default=5.0,
                    help="keep retrying the connect for this many seconds")
    cl.add_argument("--retries", type=int, default=0,
                    help="transparent retry budget: reconnect+resend on "
                         "dropped connections (idempotent ops) and on "
                         "overloaded/draining rejections (all ops)")
    cl.add_argument("--retry-backoff", type=float, default=0.05,
                    help="base seconds between retries (doubles per "
                         "attempt, capped, jittered)")
    cl.add_argument("--json", action="store_true",
                    help="print the raw JSON response envelope")
    cl.set_defaults(func=_cmd_client)

    tr = sub.add_parser("trace",
                        help="dump a running server's sampled traces as "
                             "Chrome trace-event JSON")
    tr.add_argument("out", help="output file (chrome://tracing / Perfetto)")
    tr.add_argument("--host", default="127.0.0.1")
    tr.add_argument("--port", type=int, default=7421)
    tr.add_argument("--connect-timeout", type=float, default=5.0,
                    help="keep retrying the connect for this many seconds")
    tr.set_defaults(func=_cmd_trace)

    ob = sub.add_parser("obsbench",
                        help="observability-overhead benchmark: tracing "
                             "off/sampled/full vs a no-instrumentation "
                             "baseline (writes BENCH_obs.json)")
    ob.add_argument("--network", default="asia",
                    help="bundled/analog name or .bif path")
    ob.add_argument("--requests", type=int, default=100,
                    help="closed-loop requests per mode per round")
    ob.add_argument("--concurrency", type=int, default=8,
                    help="concurrent closed-loop client connections")
    ob.add_argument("--repeats", type=int, default=24,
                    help="interleaved counterbalanced timing rounds")
    ob.add_argument("--seed", type=int, default=2023)
    ob.add_argument("--out", default="BENCH_obs.json",
                    help="output JSON path ('' to skip writing)")
    ob.set_defaults(func=_cmd_obsbench)

    cb = sub.add_parser("clusterbench",
                        help="cluster scaling benchmark: router + N "
                             "workers vs one single-process server "
                             "(writes BENCH_cluster.json)")
    cb.add_argument("--network", default="pathfinder",
                    help="bundled/analog name or .bif path")
    cb.add_argument("--requests", type=int, default=400,
                    help="closed-loop requests per measured round")
    cb.add_argument("--workers", type=int, default=4,
                    help="cluster worker processes")
    cb.add_argument("--concurrency", type=int, default=16,
                    help="concurrent closed-loop client connections")
    cb.add_argument("--repeats", type=int, default=6,
                    help="interleaved counterbalanced timing rounds")
    cb.add_argument("--out", default="BENCH_cluster.json",
                    help="output JSON path ('' to skip writing)")
    cb.set_defaults(func=_cmd_clusterbench)

    wl = sub.add_parser("workload",
                        help="traffic traces: generate a seeded mixed "
                             "workload, record live traffic through a "
                             "proxy, or replay a trace against a server")
    wl.add_argument("--seed", type=int, default=2023)
    wl.add_argument("--requests", type=int, default=240,
                    help="event budget for a generated trace")
    wl.add_argument("--network", default="asia",
                    help="primary network for zipf/burst/approx streams")
    wl.add_argument("--zipf-network", default="",
                    help="network for the hot zipf stream "
                         "(default: --network)")
    wl.add_argument("--session-network", default="",
                    help="network for session walks (default: --network)")
    wl.add_argument("--dense-grid", default="",
                    help="dense-stream grid as ROWSxCOLS[xCARD], e.g. "
                         "12x12 (default: 10x10x2)")
    wl.add_argument("--dense-observed", type=float, default=-1.0,
                    help="observed-variable fraction for dense cases "
                         "(default: the trace-wide fraction)")
    wl.add_argument("--mix", default="",
                    help="stream mix, e.g. zipf=0.4,burst=0.15,dense=0.15,"
                         "approx=0.1,session=0.2 (default: built-in mix)")
    wl.add_argument("--out", default="traffic.json",
                    help="trace JSON path ('' to skip writing)")
    wl.add_argument("--replay", default="",
                    help="replay this trace file against --host/--port "
                         "instead of generating")
    wl.add_argument("--record", action="store_true",
                    help="record live traffic: proxy --listen-port to "
                         "--host/--port for --duration seconds")
    wl.add_argument("--host", default="127.0.0.1")
    wl.add_argument("--port", type=int, default=7421,
                    help="server port (replay target / record upstream)")
    wl.add_argument("--listen-port", type=int, default=0,
                    help="recording proxy port (0 picks an ephemeral port)")
    wl.add_argument("--duration", type=float, default=30.0,
                    help="recording duration in seconds")
    wl.add_argument("--concurrency", type=int, default=8,
                    help="replay: concurrent closed-loop connections")
    wl.add_argument("--pace", type=float, default=0.0,
                    help="replay: honour recorded arrival times scaled by "
                         "this factor (0 = closed loop, 1 = real time)")
    wl.set_defaults(func=_cmd_workload)

    ab = sub.add_parser("ablate",
                        help="ablation matrix: replay one trace against a "
                             "baseline server and one-component-off "
                             "variants, rank contributions (writes "
                             "BENCH_ablation.json)")
    ab.add_argument("--trace", default="",
                    help="traffic trace JSON to replay (default: generate "
                         "from --seed/--requests)")
    ab.add_argument("--seed", type=int, default=2023)
    ab.add_argument("--requests", type=int, default=240,
                    help="event budget for the generated trace")
    ab.add_argument("--network", default="asia",
                    help="primary network for the generated trace")
    ab.add_argument("--zipf-network", default="",
                    help="network for the hot zipf stream "
                         "(default: --network)")
    ab.add_argument("--session-network", default="",
                    help="network for session walks (default: --network)")
    ab.add_argument("--dense-grid", default="",
                    help="dense-stream grid as ROWSxCOLS[xCARD], e.g. "
                         "12x12 (default: 10x10x2)")
    ab.add_argument("--dense-observed", type=float, default=-1.0,
                    help="observed-variable fraction for dense cases "
                         "(default: the trace-wide fraction)")
    ab.add_argument("--mix", default="",
                    help="stream mix for the generated trace "
                         "(see 'fastbni workload --mix')")
    ab.add_argument("--components", default="",
                    help="comma-separated components to ablate "
                         "(default: all)")
    ab.add_argument("--repeats", type=int, default=3,
                    help="counterbalanced replay rounds (round 1's cold "
                         "costs are counted on purpose)")
    ab.add_argument("--concurrency", type=int, default=8,
                    help="concurrent closed-loop connections per replay")
    ab.add_argument("--max-exact-mb", type=float, default=2.0,
                    help="auto-routing byte threshold shared by every "
                         "variant (dense trace networks should overflow it)")
    ab.add_argument("--out", default="BENCH_ablation.json",
                    help="output JSON path ('' to skip writing)")
    ab.set_defaults(func=_cmd_ablate)
    return p


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
