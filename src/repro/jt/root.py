"""Root selection (paper §2): pick the root minimising the number of layers.

The number of layer barriers in the collect/distribute passes equals the
tree height from the root, so Fast-BNI roots the tree at a clique of
minimum eccentricity — a *center* of the tree.  For trees the center lies
on the middle of a diameter path, found with two BFS passes in O(n); we
also expose the brute-force argmin for the test-suite and the ablation
bench.
"""

from __future__ import annotations

from repro.jt.structure import JunctionTree


def _bfs_far(tree: JunctionTree, start: int) -> tuple[int, list[int], list[int]]:
    """BFS from ``start``; returns (farthest node, distances, parents)."""
    n = tree.num_cliques
    dist = [-1] * n
    par = [-1] * n
    dist[start] = 0
    order = [start]
    head = 0
    while head < len(order):
        u = order[head]
        head += 1
        for v, _ in tree.nbrs[u]:
            if dist[v] == -1:
                dist[v] = dist[u] + 1
                par[v] = u
                order.append(v)
    far = max(range(n), key=lambda i: (dist[i], -i))
    return far, dist, par


def tree_center(tree: JunctionTree) -> int:
    """A clique of minimum eccentricity, via the diameter-path midpoint.

    Deterministic: of the one or two central nodes on the diameter path the
    one nearer the path start (smaller index along the path) is returned.
    """
    u, _, _ = _bfs_far(tree, 0)
    v, _, par = _bfs_far(tree, u)
    # Reconstruct the u→v diameter path.
    path = [v]
    while path[-1] != u:
        path.append(par[path[-1]])
    path.reverse()
    return path[(len(path) - 1) // 2]


def eccentricities(tree: JunctionTree) -> list[int]:
    """Eccentricity of every clique (brute force, O(n²); tests/ablation)."""
    out: list[int] = []
    for start in range(tree.num_cliques):
        _, dist, _ = _bfs_far(tree, start)
        out.append(max(dist))
    return out


def best_root_bruteforce(tree: JunctionTree) -> int:
    """Argmin-eccentricity root by exhaustive BFS (reference implementation)."""
    ecc = eccentricities(tree)
    return min(range(tree.num_cliques), key=lambda i: (ecc[i], i))


def select_root(tree: JunctionTree, strategy: str = "center") -> int:
    """Apply a root-selection strategy and re-root the tree.

    ``"center"``  — the paper's strategy (minimum eccentricity);
    ``"first"``   — keep clique 0 (what a naive implementation does);
    ``"max-size"``— largest clique as root (a common folk heuristic,
    included for the ablation).
    """
    if strategy == "center":
        root = tree_center(tree)
    elif strategy == "first":
        root = 0
    elif strategy == "max-size":
        root = max(range(tree.num_cliques), key=lambda i: (tree.cliques[i].size, -i))
    else:
        raise ValueError(f"unknown root strategy {strategy!r}")
    tree.set_root(root)
    return root
