"""The junction-tree data structure shared by every inference engine.

A compiled :class:`JunctionTree` holds cliques and separators with their
variable domains, the rooted topology (parent/children), and the CPT
assignment.  It owns *no* calibration logic — engines attach working
potentials via :meth:`JunctionTree.fresh_state` and run their own message
schedules, so the compile step is paid once and shared across engines and
test cases (exactly how FastBN amortises it across the 2000-case workload).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import JunctionTreeError
from repro.graph.cliques import elimination_cliques
from repro.graph.junction import build_junction_tree
from repro.graph.moralize import moralize
from repro.graph.triangulate import triangulate
from repro.potential.domain import Domain
from repro.potential.factor import Potential
from repro.potential.ops import multiply_into


@dataclass
class Clique:
    """A clique node: domain over its variables plus assigned CPT indices."""

    id: int
    domain: Domain
    #: Indices into the network's CPT list (``net.cpts``) assigned here.
    cpt_indices: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.domain.size


@dataclass
class Separator:
    """A separator edge between cliques ``a`` and ``b`` (``a < b``)."""

    id: int
    a: int
    b: int
    domain: Domain

    @property
    def size(self) -> int:
        return self.domain.size

    def other(self, clique_id: int) -> int:
        if clique_id == self.a:
            return self.b
        if clique_id == self.b:
            return self.a
        raise JunctionTreeError(f"clique {clique_id} not on separator {self.id}")


class JunctionTree:
    """Compiled junction tree: cliques, separators, rooted topology."""

    def __init__(
        self,
        net: BayesianNetwork,
        cliques: list[Clique],
        separators: list[Separator],
    ) -> None:
        self.net = net
        self.cliques = cliques
        self.separators = separators
        #: adjacency: clique id -> list of (neighbour clique id, separator id)
        self.nbrs: list[list[tuple[int, int]]] = [[] for _ in cliques]
        for sep in separators:
            self.nbrs[sep.a].append((sep.b, sep.id))
            self.nbrs[sep.b].append((sep.a, sep.id))
        for lst in self.nbrs:
            lst.sort()
        self.root: int = 0
        self.parent: list[int] = []
        self.parent_sep: list[int] = []
        self.children: list[list[tuple[int, int]]] = []
        self.depth: list[int] = []
        self._var_to_cliques: dict[str, list[int]] = {}
        for c in cliques:
            for name in c.domain.names:
                self._var_to_cliques.setdefault(name, []).append(c.id)
        self.set_root(0)

    # ---------------------------------------------------------------- rooting
    def set_root(self, root: int) -> None:
        """Re-root the tree, recomputing parent/children/depth via BFS."""
        n = len(self.cliques)
        if not 0 <= root < n:
            raise JunctionTreeError(f"root {root} out of range (0..{n - 1})")
        self.root = root
        parent = [-1] * n
        parent_sep = [-1] * n
        depth = [-1] * n
        children: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        order = [root]
        depth[root] = 0
        head = 0
        while head < len(order):
            u = order[head]
            head += 1
            for v, sep_id in self.nbrs[u]:
                if depth[v] == -1 and v != root:
                    depth[v] = depth[u] + 1
                    parent[v] = u
                    parent_sep[v] = sep_id
                    children[u].append((v, sep_id))
                    order.append(v)
        if len(order) != n:
            raise JunctionTreeError("junction tree is disconnected")
        self.parent = parent
        self.parent_sep = parent_sep
        self.children = children
        self.depth = depth

    def bfs_order(self) -> list[int]:
        """Clique ids in BFS order from the current root."""
        order = [self.root]
        head = 0
        while head < len(order):
            u = order[head]
            head += 1
            order.extend(v for v, _ in self.children[u])
        return order

    @property
    def num_cliques(self) -> int:
        return len(self.cliques)

    @property
    def num_separators(self) -> int:
        return len(self.separators)

    def height(self) -> int:
        """Tree height in clique hops from the current root."""
        return max(self.depth) if self.depth else 0

    # ------------------------------------------------------------- potentials
    def fresh_state(self) -> "TreeState":
        """Allocate working potentials initialised from the assigned CPTs."""
        return TreeState(self)

    def fresh_batch_state(self, num_cases: int,
                          base_cliques: "list | None" = None) -> "BatchTreeState":
        """Allocate a batched calibration state for ``num_cases`` cases.

        ``base_cliques`` optionally supplies the CPT-product clique tables
        (one 1-D array per clique) so engines can pay the CPT multiply once
        and reuse it across batches.
        """
        return BatchTreeState(self, num_cases, base_cliques)

    # ----------------------------------------------------------------- lookup
    def cliques_with(self, var_name: str) -> list[int]:
        """Ids of cliques whose domain contains ``var_name``."""
        try:
            return self._var_to_cliques[var_name]
        except KeyError:
            raise JunctionTreeError(f"variable {var_name!r} is in no clique") from None

    def smallest_clique_with(self, var_name: str) -> int:
        ids = self.cliques_with(var_name)
        return min(ids, key=lambda i: (self.cliques[i].size, i))

    # ------------------------------------------------------------- statistics
    def stats(self) -> dict[str, float]:
        sizes = [c.size for c in self.cliques]
        sep_sizes = [s.size for s in self.separators]
        return {
            "num_cliques": len(self.cliques),
            "num_separators": len(self.separators),
            "max_clique_size": max(sizes),
            "total_clique_size": sum(sizes),
            "total_separator_size": sum(sep_sizes),
            "height": self.height(),
        }


class TreeState:
    """Per-inference working potentials (clique + separator tables).

    ``log_norm`` accumulates the log of every normalisation constant pulled
    out during propagation, so engines can report ``log P(evidence)`` even
    with scaled messages.
    """

    __slots__ = ("tree", "clique_pot", "sep_pot", "log_norm")

    def __init__(self, tree: JunctionTree) -> None:
        self.tree = tree
        cpts = tree.net.cpts
        self.clique_pot: list[Potential] = []
        for clique in tree.cliques:
            pot = Potential(clique.domain)  # ones
            for k in clique.cpt_indices:
                multiply_into(pot, Potential.from_cpt(cpts[k]))
            self.clique_pot.append(pot)
        self.sep_pot: list[Potential] = [Potential(s.domain) for s in tree.separators]
        self.log_norm: float = 0.0


class BatchTreeState:
    """Working potentials for ``n`` inference cases calibrated together.

    The batched analogue of :class:`TreeState`: every clique/separator table
    is materialised as an ``(n, table_size)`` C-contiguous array whose rows
    are the per-case tables, and ``log_norm`` is an ``(n,)`` vector of the
    per-case accumulated normalisation constants.  Row *i* of every array is
    exactly the state that a per-case :class:`TreeState` would hold for case
    *i*, so batched engines can be validated row-by-row against the
    sequential ones.
    """

    __slots__ = ("tree", "n", "clique_pot", "sep_pot", "log_norm")

    def __init__(self, tree: JunctionTree, n: int,
                 base_cliques: list | None = None) -> None:
        if n < 1:
            raise JunctionTreeError(f"batch needs at least one case, got {n}")
        self.tree = tree
        self.n = n
        if base_cliques is None:
            base_cliques = [p.values for p in TreeState(tree).clique_pot]
        self.clique_pot: list = [
            np.broadcast_to(v, (n, v.size)).copy()  # always a writable C copy
            for v in base_cliques
        ]
        self.sep_pot: list = [np.ones((n, s.size)) for s in tree.separators]
        self.log_norm = np.zeros(n)

    def case_state(self, i: int) -> TreeState:
        """A per-case :class:`TreeState` view of row ``i`` (shares memory)."""
        if not 0 <= i < self.n:
            raise JunctionTreeError(f"case {i} out of range (batch of {self.n})")
        state = TreeState.__new__(TreeState)
        state.tree = self.tree
        state.clique_pot = [
            Potential(c.domain, self.clique_pot[c.id][i])
            for c in self.tree.cliques
        ]
        state.sep_pot = [
            Potential(s.domain, self.sep_pot[s.id][i])
            for s in self.tree.separators
        ]
        state.log_norm = float(self.log_norm[i])
        return state


def assign_cpts(net: BayesianNetwork, cliques: list[Clique]) -> None:
    """Assign every CPT to the smallest clique covering its family.

    Guaranteed to succeed: each family is a clique of the moral graph, and
    every maximal clique of the triangulated graph covers some elimination
    clique containing it.
    """
    for k, cpt in enumerate(net.cpts):
        family = {v.name for v in cpt.variables}
        best = -1
        best_key: tuple[int, int] | None = None
        for c in cliques:
            if family <= set(c.domain.names):
                key = (c.size, c.id)
                if best_key is None or key < best_key:
                    best_key = key
                    best = c.id
        if best < 0:
            raise JunctionTreeError(
                f"no clique covers the family of {cpt.child.name!r} — "
                "triangulation is inconsistent with the moral graph"
            )
        cliques[best].cpt_indices.append(k)


def compile_junction_tree(
    net: BayesianNetwork,
    heuristic: str = "min-fill",
) -> JunctionTree:
    """Full compile pipeline: moralize → triangulate → cliques → tree.

    Clique domains order variables by network insertion order, so all
    potential layouts are deterministic.
    """
    net.validate()
    adj = moralize(net)
    cards = {v.name: v.cardinality for v in net.variables}
    result = triangulate(adj, heuristic=heuristic, cardinalities=cards)
    maximal = elimination_cliques(result.elimination_cliques)
    skeleton = build_junction_tree(maximal)

    var_rank = {name: i for i, name in enumerate(net.variable_names)}
    cliques: list[Clique] = []
    for i, members in enumerate(skeleton.cliques):
        ordered = sorted(members, key=lambda n: var_rank[n])
        cliques.append(Clique(i, Domain(tuple(net.variable(n) for n in ordered))))
    separators: list[Separator] = []
    for sep_id, (a, b, members) in enumerate(skeleton.edges):
        ordered = sorted(members, key=lambda n: var_rank[n])
        separators.append(
            Separator(sep_id, a, b, Domain(tuple(net.variable(n) for n in ordered)))
        )
    assign_cpts(net, cliques)
    return JunctionTree(net, cliques, separators)
