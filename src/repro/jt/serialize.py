"""Persist a compiled junction tree to JSON and restore it.

Compilation (triangulation + spanning tree + CPT assignment) is the
expensive, network-dependent step; production deployments compile once and
reuse the structure across processes.  The JSON form stores only structure
(clique/separator scopes, edges, CPT assignment) — potentials are always
rebuilt from the network's CPTs, so a stale file cannot silently carry old
parameters.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bn.network import BayesianNetwork
from repro.errors import JunctionTreeError
from repro.jt.structure import Clique, JunctionTree, Separator
from repro.potential.domain import Domain

FORMAT_VERSION = 1


def tree_to_dict(tree: JunctionTree) -> dict:
    """Structure-only dictionary form of a compiled tree."""
    return {
        "version": FORMAT_VERSION,
        "network": tree.net.name,
        "num_variables": tree.net.num_variables,
        "cliques": [
            {"id": c.id, "variables": list(c.domain.names), "cpts": list(c.cpt_indices)}
            for c in tree.cliques
        ],
        "separators": [
            {"id": s.id, "a": s.a, "b": s.b, "variables": list(s.domain.names)}
            for s in tree.separators
        ],
        "root": tree.root,
    }


def tree_from_dict(data: dict, net: BayesianNetwork) -> JunctionTree:
    """Rebuild a compiled tree against ``net`` (validates compatibility)."""
    if data.get("version") != FORMAT_VERSION:
        raise JunctionTreeError(
            f"unsupported junction-tree format version {data.get('version')!r}"
        )
    if data.get("num_variables") != net.num_variables:
        raise JunctionTreeError(
            "serialized tree does not match the network "
            f"({data.get('num_variables')} vs {net.num_variables} variables)"
        )
    try:
        cliques = [
            Clique(c["id"], Domain(tuple(net.variable(n) for n in c["variables"])),
                   list(c["cpts"]))
            for c in data["cliques"]
        ]
        separators = [
            Separator(s["id"], s["a"], s["b"],
                      Domain(tuple(net.variable(n) for n in s["variables"])))
            for s in data["separators"]
        ]
    except KeyError as exc:
        raise JunctionTreeError(f"malformed junction-tree data: missing {exc}") from None
    # Validate CPT assignment covers every CPT exactly once.
    assigned = sorted(k for c in cliques for k in c.cpt_indices)
    if assigned != list(range(len(net.cpts))):
        raise JunctionTreeError(
            "serialized CPT assignment does not match the network's CPTs"
        )
    for clique in cliques:
        names = set(clique.domain.names)
        for k in clique.cpt_indices:
            fam = {v.name for v in net.cpts[k].variables}
            if not fam <= names:
                raise JunctionTreeError(
                    f"clique {clique.id} does not cover the family of CPT {k}"
                )
    tree = JunctionTree(net, cliques, separators)
    tree.set_root(int(data.get("root", 0)))
    return tree


def save_tree(tree: JunctionTree, path: str | Path) -> None:
    """Write a compiled tree's structure to a JSON file."""
    Path(path).write_text(json.dumps(tree_to_dict(tree)))


def load_tree(path: str | Path, net: BayesianNetwork) -> JunctionTree:
    """Load a compiled tree from JSON and bind it to ``net``."""
    return tree_from_dict(json.loads(Path(path).read_text()), net)
