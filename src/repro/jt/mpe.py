"""Most-probable-explanation (MPE) queries via max-product propagation.

A single upward (collect) pass with max-marginalization messages computes
``max_x P(x, e)`` at the root; a downward backtrace then decodes the
argmax assignment clique by clique: fix the root clique's argmax, and for
each child pick the entry that achieved the separator maximum under the
parent's chosen separator states.

This is the classic Dawid (1992) max-propagation — the standard companion
query of a junction-tree engine, built entirely on the library's existing
structures (an "optional feature" extension beyond the poster's scope).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import EvidenceError
from repro.jt.evidence import absorb_evidence
from repro.jt.structure import JunctionTree
from repro.potential.factor import Potential
from repro.potential.maxops import max_marginalize_argmax_vec, restrict
from repro.potential.ops import multiply_into


def most_probable_explanation(
    tree: JunctionTree,
    evidence: dict[str, str | int] | None = None,
) -> tuple[dict[str, int], float]:
    """Return ``(assignment, log probability)`` of the MPE given evidence.

    The assignment covers every network variable (state indices) and is
    consistent with the evidence; the log probability is
    ``log max_x P(x, e)`` — exactly the joint probability of the returned
    assignment.
    """
    state = tree.fresh_state()
    if evidence:
        absorb_evidence(state, evidence)

    order = tree.bfs_order()
    # Upward pass: psi_c absorbs max-messages from children, then sends
    # its own max-projection up.  Scaled like sum-propagation to avoid
    # underflow; constants accumulate in log_scale.
    messages: dict[int, Potential] = {}
    argmaxes: dict[int, np.ndarray] = {}
    log_scale = 0.0
    for cid in reversed(order):
        psi = state.clique_pot[cid]
        for child, _sep in tree.children[cid]:
            multiply_into(psi, messages[child])
        parent = tree.parent[cid]
        if parent < 0:
            continue
        sep = tree.separators[tree.parent_sep[cid]]
        msg, arg = max_marginalize_argmax_vec(psi, sep.domain.names)
        peak = float(msg.values.max())
        if peak <= 0.0:
            raise EvidenceError("evidence has zero probability (empty max-message)")
        msg.values /= peak
        log_scale += math.log(peak)
        messages[cid] = msg
        argmaxes[cid] = arg

    # Root decision.
    root_pot = state.clique_pot[tree.root]
    best_flat = int(np.argmax(root_pot.values))
    best_val = float(root_pot.values[best_flat])
    if best_val <= 0.0:
        raise EvidenceError("evidence has zero probability")
    assignment: dict[str, int] = dict(root_pot.domain.unflatten(best_flat))

    # Downward backtrace: per child, the separator assignment is already
    # fixed; the stored argmax gives the maximising clique entry.
    for cid in order:
        for child, sep_id in tree.children[cid]:
            sep = tree.separators[sep_id]
            sep_assign = {n: assignment[n] for n in sep.domain.names}
            sep_flat = sep.domain.flat_index(sep_assign)
            child_flat = int(argmaxes[child][sep_flat])
            child_assign = state.clique_pot[child].domain.unflatten(child_flat)
            for name, s in child_assign.items():
                if name in assignment:
                    # RIP guarantees consistency on shared variables.
                    assert assignment[name] == s
                else:
                    assignment[name] = s

    log_p = log_scale + math.log(best_val)
    return assignment, log_p


def mpe_bruteforce(net, evidence: dict[str, str | int] | None = None
                   ) -> tuple[dict[str, int], float]:
    """Exhaustive MPE oracle for tiny networks (tests only)."""
    evidence = {
        name: net.variable(name).state_index(s)
        for name, s in (evidence or {}).items()
    }
    from repro.potential.domain import Domain

    dom = Domain(net.variables)
    best, best_lp = None, -math.inf
    for assign in dom.assignments():
        if any(assign[n] != s for n, s in evidence.items()):
            continue
        lp = net.log_joint(assign)
        if lp > best_lp:
            best, best_lp = dict(assign), lp
    if best is None or not math.isfinite(best_lp):
        raise EvidenceError("evidence has zero probability")
    return best, best_lp


class MPEEngine:
    """Engine-style wrapper: compile once, answer MPE queries many times."""

    name = "mpe"

    def __init__(self, net, heuristic: str = "min-fill") -> None:
        from repro.jt.root import select_root
        from repro.jt.structure import compile_junction_tree

        self.net = net
        self.tree = compile_junction_tree(net, heuristic=heuristic)
        select_root(self.tree, "center")

    def query(self, evidence: dict[str, str | int] | None = None
              ) -> tuple[dict[str, int], float]:
        return most_probable_explanation(self.tree, evidence)
