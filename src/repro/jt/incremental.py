"""Incremental evidence-delta recalibration over a compiled junction tree.

Why this exists
---------------
The service layer pays a full two-phase calibration for every query batch,
even when consecutive requests against one network differ by a single
finding.  The layered message-passing schedule (:mod:`repro.jt.layers`)
makes the *unaffected-subtree skip* cheap to state: a message only changes
if something on its input side changed, so an evidence delta that touches
one branch of the tree leaves every other branch's messages bit-for-bit
valid.

Architecture
------------
Hugin propagation (:mod:`repro.jt.calibrate`) overwrites clique tables in
place, which makes evidence *retraction* impossible to express (zeroed
entries cannot be divided back).  This module therefore keeps a
Shenoy-Shafer-style state over the same compiled tree, consuming the
shared execution plan (:func:`repro.exec.plan.compile_plan`) for its
per-edge sum-axes/broadcast geometry and the cached CPT-product base
tables — the same :class:`~repro.exec.plan.EdgeGeometry` every other
engine reads:

* per clique, the **local potential** ``psi_c`` = cached CPT product
  (shared, never mutated) times the clique's current evidence mask;
* per tree edge, the two **directed messages** ``up[c]`` (child ``c`` to
  its parent) and ``down[c]`` (parent to ``c``), each stored normalised
  with a scalar log-scale so ``log P(e)`` stays exact;
* per-edge **validity flags**: messages are recomputed lazily, only when a
  query needs them and only if an evidence delta invalidated them.

On :meth:`IncrementalEngine.update` the engine diffs the evidence plans
(:func:`repro.jt.evidence.evidence_plan`), rebuilds the *dirty* cliques'
local potentials (one mask multiply each), and invalidates exactly:

* every ``up`` message on a path from a dirty clique to the root (their
  input subtrees contain dirt);
* every ``down`` message except those on the path from the root to the
  lowest common ancestor of the dirty cliques (those are the only edges
  whose entire input side — everything *outside* their subtree — is
  clean).

A subsequent posterior query then revalidates only the messages its
target clique actually depends on; a query touching the clean side of the
tree after a one-finding delta recomputes a handful of messages instead
of ``2(n-1)``.

Consistency contract: posteriors and ``log P(e)`` agree with a cold full
calibration (:class:`repro.core.FastBNI` or
:class:`repro.jt.engine.JunctionTreeEngine`) to float64 round-off under
arbitrary add/retract/change sequences; ``tests/test_incremental.py``
pins 1e-12 agreement on the bundled networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import EvidenceError, QueryError
from repro.exec.engine_api import INCREMENTAL_ENGINE
from repro.exec.plan import compile_plan
from repro.jt.engine import InferenceResult
from repro.jt.evidence import check_evidence, evidence_plan
from repro.jt.structure import JunctionTree
from repro.potential.index_map import consistency_mask

#: Consistency-mask memo cap per engine: (clique, evidence-group) pairs are
#: few on real traffic, but unbounded keys could leak under adversarial
#: evidence churn.
_MASK_CACHE_LIMIT = 512


@dataclass(frozen=True)
class EvidenceDelta:
    """The difference between two evidence sets, as the engine applied it.

    ``added``/``retracted``/``changed`` name the findings (``changed`` =
    same variable, different observed state); ``dirty_cliques`` lists the
    clique ids whose local potential was rebuilt.  ``size`` is the edit
    count — the natural x-axis of the incremental benchmark.
    """

    added: tuple[str, ...]
    retracted: tuple[str, ...]
    changed: tuple[str, ...]
    dirty_cliques: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.added) + len(self.retracted) + len(self.changed)


def evidence_delta(old: dict[str, int], new: dict[str, int]) -> tuple[
        tuple[str, ...], tuple[str, ...], tuple[str, ...]]:
    """``(added, retracted, changed)`` variable names between two
    index-normalised evidence dicts (see :func:`repro.jt.evidence.check_evidence`)."""
    added = tuple(sorted(n for n in new if n not in old))
    retracted = tuple(sorted(n for n in old if n not in new))
    changed = tuple(sorted(n for n in new if n in old and new[n] != old[n]))
    return added, retracted, changed


class IncrementalEngine:
    """Exact inference with delta recalibration (see the module docstring).

    Parameters
    ----------
    tree:
        A compiled :class:`~repro.jt.structure.JunctionTree`.  The engine
        never re-roots it; the rooted topology in place at construction
        time defines the message directions for the engine's lifetime.
    base_cliques:
        Optional per-clique CPT-product tables (1-D float64 arrays, one per
        clique in id order) so several engines can share the compile-time
        product — :class:`~repro.core.FastBNI` engines cache exactly this
        list.  Treated as immutable; a fresh product is built when omitted.
    evidence:
        Initial evidence (state labels or indices).  The constructor only
        *records* it — no propagation happens until the first query, so
        constructing (and discarding) states is nearly free.

    Failure modes: :class:`~repro.errors.EvidenceError` for unknown
    variables/states or zero-probability evidence (raised from the query
    that first needs the impossible message, not from :meth:`update`);
    :class:`~repro.errors.QueryError` for unknown target variables.  After
    an :class:`EvidenceError` the state stays usable — the next
    :meth:`update` to feasible evidence recomputes what it invalidated.
    """

    #: Capability flags the service layers dispatch on.
    capabilities = INCREMENTAL_ENGINE

    def __init__(self, tree: JunctionTree,
                 base_cliques: list[np.ndarray] | None = None,
                 evidence: dict[str, str | int] | None = None) -> None:
        self.tree = tree
        #: The shared execution plan: per-edge ndview geometry + cached
        #: CPT products, compiled once per (tree, root) and shared with
        #: every other engine over this tree.
        self.plan = compile_plan(tree)
        spec = self.plan.spec
        if base_cliques is None:
            base_cliques = self.plan.base_cliques
        self._base: list[np.ndarray] = list(base_cliques)
        n = tree.num_cliques
        #: N-D shape of each clique table (domain order = var-rank order).
        self._cshape: tuple[tuple[int, ...], ...] = spec.clique_shapes
        #: Per-edge geometry keyed by child clique id (None for the root).
        self._edges = [spec.edges.get(cid) for cid in range(n)]
        #: (clique id, summed axes) for single-variable posterior reads.
        self._var_axes: dict[str, tuple[int, tuple[int, ...]]] = {}
        #: psi_c: base product x current evidence mask.  Shares the base
        #: array for evidence-free cliques; rebuilt (fresh array) on delta.
        self._local: list[np.ndarray] = list(self._base)
        self._up: list[np.ndarray | None] = [None] * n
        self._down: list[np.ndarray | None] = [None] * n
        self._up_lz = [0.0] * n
        self._down_lz = [0.0] * n
        self._up_valid = [False] * n
        self._down_valid = [False] * n
        #: (values, log-scale) per clique; cleared on every dirty update.
        self._belief: list[tuple[np.ndarray, float] | None] = [None] * n
        #: Cliques with a cached belief, in build order — lets
        #: :meth:`log_evidence` reuse whatever belief a posterior read
        #: just built instead of always paying for the root's product.
        self._belief_cids: list[int] = []
        #: Idempotent memo of consistency masks keyed by
        #: (clique id, sorted evidence-group items); shared across clones.
        self._masks: dict[tuple, np.ndarray] = {}
        self._evidence: dict[str, int] = {}
        self._plan: dict[int, dict[str, int]] = {}
        #: Work counters since construction (updates, cliques_rebuilt,
        #: up_recomputed, down_recomputed, beliefs) — the delta-size
        #: metrics surfaced by the service cache.
        self.counters: dict[str, int] = {
            "updates": 0, "cliques_rebuilt": 0,
            "up_recomputed": 0, "down_recomputed": 0, "beliefs": 0,
        }
        if evidence:
            self.update(evidence)

    # ----------------------------------------------------------------- state
    @property
    def name(self) -> str:
        return "incremental"

    @property
    def evidence(self) -> dict[str, int]:
        """The index-normalised evidence the state currently represents."""
        return dict(self._evidence)

    def close(self) -> None:
        """Nothing to release (no pools, no shared memory); protocol hook."""

    def __enter__(self) -> "IncrementalEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def validate_case(self, evidence: dict | None = None,
                      soft_evidence: dict | None = None) -> None:
        """Protocol hook: check a request's evidence without applying it."""
        check_evidence(self.tree, dict(evidence or {}))
        if soft_evidence:
            raise EvidenceError(
                "the incremental engine expresses hard evidence only "
                "(soft likelihoods cannot be retracted from a zeroing mask)"
            )

    def clone(self) -> "IncrementalEngine":
        """An independent state sharing all immutable arrays (O(cliques)).

        Message and local arrays are replaced — never mutated — by
        recomputation, so the clone and the original can diverge freely;
        only the idempotent mask memo stays shared.
        """
        other = object.__new__(IncrementalEngine)
        other.tree = self.tree
        other.plan = self.plan
        other._base = self._base
        other._cshape = self._cshape
        other._edges = self._edges
        other._var_axes = self._var_axes
        other._local = list(self._local)
        other._up = list(self._up)
        other._down = list(self._down)
        other._up_lz = list(self._up_lz)
        other._down_lz = list(self._down_lz)
        other._up_valid = list(self._up_valid)
        other._down_valid = list(self._down_valid)
        other._belief = list(self._belief)
        other._belief_cids = list(self._belief_cids)
        other._masks = self._masks
        other._evidence = dict(self._evidence)
        other._plan = {cid: dict(g) for cid, g in self._plan.items()}
        other.counters = dict(self.counters)
        return other

    def resident_bytes(self) -> int:
        """Estimated bytes owned by this state (messages + rebuilt locals).

        Clones share arrays, so summing over clones over-counts; the
        service cache uses this as an upper bound for its byte budget.
        """
        total = 0
        for arr in self._up:
            if arr is not None:
                total += arr.nbytes
        for arr in self._down:
            if arr is not None:
                total += arr.nbytes
        for cid, local in enumerate(self._local):
            if local is not self._base[cid]:
                total += local.nbytes
        for cached in self._belief:
            if cached is not None:
                total += cached[0].nbytes
        return total

    # ---------------------------------------------------------------- update
    def update(self, evidence: dict[str, str | int] | None = None) -> EvidenceDelta:
        """Switch the state to ``evidence`` (the full new set, not a diff).

        Rebuilds dirty cliques and invalidates the affected messages; does
        **no** propagation itself (queries pay only for what they read).
        Returns the :class:`EvidenceDelta` that was applied.  Unknown
        variables or states raise :class:`~repro.errors.EvidenceError`
        before any state is touched.
        """
        tree = self.tree
        ev = check_evidence(tree, dict(evidence or {}))
        new_plan = evidence_plan(tree, ev)
        dirty = sorted(
            cid for cid in set(new_plan) | set(self._plan)
            if new_plan.get(cid) != self._plan.get(cid)
        )
        added, retracted, changed = evidence_delta(self._evidence, ev)
        delta = EvidenceDelta(added, retracted, changed, tuple(dirty))
        self._evidence, self._plan = ev, new_plan
        if not dirty:
            return delta
        self.counters["updates"] += 1
        for cid in dirty:
            group = new_plan.get(cid)
            if group:
                self._local[cid] = self._base[cid] * self._mask(cid, group)
            else:
                self._local[cid] = self._base[cid]
            self.counters["cliques_rebuilt"] += 1
        # Up messages: anything with dirt below it is stale.  Invalidation
        # always walks to the root, so "invalid implies ancestors invalid"
        # holds and the walk may stop at the first already-invalid edge.
        root = tree.root
        for cid in dirty:
            x = cid
            while x != root and self._up_valid[x]:
                self._up_valid[x] = False
                x = tree.parent[x]
        # Down messages: down[c] depends on everything OUTSIDE subtree(c),
        # so it survives iff subtree(c) still contains every dirty clique —
        # exactly the cliques on the root -> LCA(dirty) path.
        top = dirty[0]
        for cid in dirty[1:]:
            top = self._lca(top, cid)
        allowed = set()
        x = top
        while x != root:
            allowed.add(x)
            x = tree.parent[x]
        for cid in range(tree.num_cliques):
            if cid != root and cid not in allowed:
                self._down_valid[cid] = False
        self._belief = [None] * tree.num_cliques
        self._belief_cids = []
        return delta

    def _lca(self, a: int, b: int) -> int:
        depth, parent = self.tree.depth, self.tree.parent
        while depth[a] > depth[b]:
            a = parent[a]
        while depth[b] > depth[a]:
            b = parent[b]
        while a != b:
            a, b = parent[a], parent[b]
        return a

    def _mask(self, cid: int, group: dict[str, int]) -> np.ndarray:
        key = (cid, tuple(sorted(group.items())))
        mask = self._masks.get(key)
        if mask is None:
            mask = consistency_mask(self.tree.cliques[cid].domain, group)
            if len(self._masks) < _MASK_CACHE_LIMIT:
                self._masks[key] = mask
        return mask

    # -------------------------------------------------------------- messages
    def _product_at(self, cid: int, exclude_child: int = -1,
                    include_down: bool = True) -> tuple[np.ndarray, float]:
        """N-D product of ``psi_cid`` with its valid incoming messages.

        ``exclude_child`` leaves one child's up message out (the
        Shenoy-Shafer rule for the message *toward* that child);
        ``include_down=False`` leaves out the parent's down message (for
        the up message toward the parent).  Returns the product (a view of
        ``local`` when nothing multiplies in) and the accumulated message
        log-scale.
        """
        tree = self.tree
        pot = self._local[cid].reshape(self._cshape[cid])
        acc: np.ndarray | None = None
        lz = 0.0
        if include_down and cid != tree.root:
            edge = self._edges[cid]
            msg = self._down[cid].reshape(edge.child_bshape)
            acc = pot * msg
            lz += self._down_lz[cid]
        for child, _sep in tree.children[cid]:
            if child == exclude_child:
                continue
            msg = self._up[child].reshape(self._edges[child].parent_bshape)
            if acc is None:
                acc = pot * msg
            else:
                acc *= msg
            lz += self._up_lz[child]
        return (pot if acc is None else acc), lz

    def _normalize(self, values: np.ndarray, cid: int) -> tuple[np.ndarray, float]:
        total = float(values.sum())
        if total <= 0.0:
            raise EvidenceError(
                "evidence has zero probability (empty message at clique "
                f"{cid})"
            )
        return values.reshape(-1) / total, math.log(total)

    def _recompute_up(self, cid: int) -> None:
        edge = self._edges[cid]
        pot, lz = self._product_at(cid, include_down=False)
        marg = pot.sum(axis=edge.up_axes) if edge.up_axes else pot
        values, log_total = self._normalize(marg, cid)
        self._up[cid] = values
        self._up_lz[cid] = lz + log_total
        self._up_valid[cid] = True
        self.counters["up_recomputed"] += 1

    def _recompute_down(self, cid: int) -> None:
        edge = self._edges[cid]
        parent = self.tree.parent[cid]
        pot, lz = self._product_at(parent, exclude_child=cid)
        marg = pot.sum(axis=edge.down_axes) if edge.down_axes else pot
        values, log_total = self._normalize(marg, cid)
        self._down[cid] = values
        self._down_lz[cid] = lz + log_total
        self._down_valid[cid] = True
        self.counters["down_recomputed"] += 1

    def _ensure_up(self, cid: int) -> None:
        """Make ``up[cid]`` valid, recomputing stale descendants first.

        Iterative post-order over the *invalid* region only ("invalid
        implies ancestors invalid" bounds the walk); recursion would
        overflow on 1000-clique chain networks.
        """
        if self._up_valid[cid]:
            return
        stack: list[tuple[int, bool]] = [(cid, False)]
        while stack:
            node, expanded = stack.pop()
            if self._up_valid[node]:
                continue
            if expanded:
                self._recompute_up(node)
            else:
                stack.append((node, True))
                for child, _sep in self.tree.children[node]:
                    if not self._up_valid[child]:
                        stack.append((child, False))

    def _ensure_down(self, cid: int) -> None:
        """Make ``down[cid]`` valid (no-op for the root, which has none)."""
        tree = self.tree
        if cid == tree.root:
            return
        chain: list[int] = []
        x = cid
        while x != tree.root and not self._down_valid[x]:
            chain.append(x)
            x = tree.parent[x]
        for node in reversed(chain):
            parent = tree.parent[node]
            for sibling, _sep in tree.children[parent]:
                if sibling != node:
                    self._ensure_up(sibling)
            self._recompute_down(node)

    def _clique_belief(self, cid: int) -> tuple[np.ndarray, float]:
        """Unnormalised ``P(C, e)``-proportional table plus its log-scale."""
        cached = self._belief[cid]
        if cached is not None:
            return cached
        tree = self.tree
        for child, _sep in tree.children[cid]:
            self._ensure_up(child)
        self._ensure_down(cid)
        pot, lz = self._product_at(cid)
        self._belief[cid] = (pot, lz)
        self._belief_cids.append(cid)
        self.counters["beliefs"] += 1
        return self._belief[cid]

    # ---------------------------------------------------------------- queries
    def posterior(self, name: str) -> np.ndarray:
        """``P(name | evidence)``, revalidating only the messages it needs."""
        tree = self.tree
        plan = self._var_axes.get(name)
        if plan is None:
            if name not in tree.net:
                raise QueryError(f"unknown variable {name!r}")
            cid = tree.smallest_clique_with(name)
            dom = tree.cliques[cid].domain
            axes = tuple(i for i, v in enumerate(dom.variables) if v.name != name)
            plan = self._var_axes[name] = (cid, axes)
        cid, axes = plan
        values, _lz = self._clique_belief(cid)
        marg = values.reshape(self._cshape[cid]).sum(axis=axes) if axes else values
        marg = marg.reshape(-1)
        total = float(marg.sum())
        if total == 0.0:
            # An impossible evidence set can surface as an all-zero belief
            # without any message going empty (the contradiction may sit
            # entirely inside one rebuilt clique); classify it like
            # calibration would.
            raise EvidenceError(
                "evidence has zero probability (all-zero belief at clique "
                f"{cid})")
        if total < 0.0 or not np.isfinite(total):
            raise QueryError(
                f"cannot normalise posterior of {name!r} (total={total})")
        return marg / total

    def posteriors(self, targets: tuple[str, ...] = (),
                   evidence: dict | None = None) -> dict[str, np.ndarray]:
        """Posteriors for ``targets`` (default: every network variable).

        ``evidence`` (when given) switches the state first via
        :meth:`update`; omitted, the current evidence state is read.
        """
        if evidence is not None:
            self.update(evidence)
        names = targets or self.tree.net.variable_names
        return {name: self.posterior(name) for name in names}

    def log_evidence(self) -> float:
        """``log P(evidence)``; ``-inf`` for impossible evidence.

        ``P(C, e)`` summed over *any* clique is ``P(e)``, so this reuses
        a belief a posterior read already built for the current evidence
        state before paying for the root's full message product — the
        common "posteriors then log P(e)" read pair costs one belief.
        """
        if self._belief_cids:
            values, lz = self._belief[self._belief_cids[0]]
        else:
            values, lz = self._clique_belief(self.tree.root)
        total = float(values.sum())
        if total <= 0.0:
            return -math.inf
        return lz + math.log(total)

    def infer(self, evidence: dict[str, str | int] | None = None,
              targets: tuple[str, ...] = ()) -> InferenceResult:
        """Drop-in ``infer``: :meth:`update` + read posteriors and log P(e).

        ``meta`` carries ``delta_size`` and ``dirty_cliques`` so callers
        (the service cache, the benchmark) can report how much of the tree
        the query actually touched.
        """
        delta = self.update(evidence)
        return InferenceResult(
            posteriors=self.posteriors(targets),
            log_evidence=self.log_evidence(),
            meta={"delta_size": float(delta.size),
                  "dirty_cliques": float(len(delta.dirty_cliques))},
        )

    def infer_batch(self, cases, case_workers: int = 1,
                    targets: tuple[str, ...] = (),
                    vectorized: bool = False) -> list[InferenceResult]:
        """Protocol hook: chain the cases through this state's delta path.

        The incremental engine has no vectorised case axis — its batch
        form is sequential chaining, which is exactly where it shines when
        consecutive cases overlap (``case_workers``/``vectorized`` are
        accepted for interface compatibility and ignored).
        """
        from repro.core.batch import case_evidence, case_soft_evidence

        results = []
        for case in cases:
            if case_soft_evidence(case):
                raise EvidenceError(
                    "the incremental engine expresses hard evidence only")
            results.append(self.infer(case_evidence(case), targets))
        return results

    def recalibrate(self) -> None:
        """Force every message valid (one full sweep's worth of work).

        Useful before :meth:`clone` fan-out: descendants then share fully
        valid messages and pay only for their own deltas.
        """
        tree = self.tree
        order = tree.bfs_order()
        for cid in reversed(order):
            if cid != tree.root:
                self._ensure_up(cid)
        for cid in order:
            if cid != tree.root:
                self._ensure_down(cid)

    def stats(self) -> dict[str, float]:
        """Tree statistics plus this state's work counters."""
        s = self.tree.stats()
        s.update({k: float(v) for k, v in self.counters.items()})
        s["resident_bytes"] = float(self.resident_bytes())
        return s
