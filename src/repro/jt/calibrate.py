"""Reference sequential two-phase calibration (Lauritzen–Spiegelhalter/Hugin).

The schedule walks the BFS layering: **collect** sends messages from the
deepest cliques toward the root, **distribute** sends them back out.  One
message from clique *c* through separator *S* to neighbour *p* is

    newS  = marginalize(phi_c, S)        # the paper's op 1
    phi_p *= extend(newS / oldS, C_p)    # ops 2+3 fused (Hugin absorption)
    oldS  = newS

Messages are normalised as they are computed ("scaled propagation"): the
pulled-out constants accumulate in ``state.log_norm`` so
``log P(evidence)`` remains exact while every table stays O(1) — necessary
on 1000-node networks where raw products underflow float64.

After both phases each clique potential is proportional to
``P(clique vars, evidence)`` with the same constant everywhere.
"""

from __future__ import annotations

import math

from repro.errors import EvidenceError
from repro.jt.layers import LayerSchedule, compute_layers
from repro.jt.structure import JunctionTree, TreeState
from repro.potential.ops import divide, marginalize, multiply_into


def send_message(
    state: TreeState,
    src: int,
    sep_id: int,
    dst: int,
    method: str = "auto",
    scaled: bool = True,
    track_norm: bool = True,
) -> None:
    """One Hugin message ``src --sep--> dst``, updating state in place.

    ``track_norm`` must be True only for collect-phase messages: every
    collect constant is a factor of the root table's deficit from P(e),
    whereas distribute constants never reach the root and would corrupt
    ``log_evidence`` if accumulated.
    """
    tree = state.tree
    sep = tree.separators[sep_id]
    new_sep = marginalize(state.clique_pot[src], sep.domain.names, method=method)
    if scaled:
        total = float(new_sep.values.sum())
        if total <= 0.0:
            raise EvidenceError(
                "evidence has zero probability (empty message on separator "
                f"{sep_id})"
            )
        new_sep.values /= total
        if track_norm:
            state.log_norm += math.log(total)
    ratio = divide(new_sep, state.sep_pot[sep_id], method=method)
    multiply_into(state.clique_pot[dst], ratio, method=method)
    state.sep_pot[sep_id] = new_sep


def collect(state: TreeState, schedule: LayerSchedule, method: str = "auto") -> None:
    """Upward pass: deepest layer first, each clique messages its parent."""
    tree = state.tree
    for cliques, _seps in schedule.collect_layers():
        for cid in cliques:
            send_message(state, cid, tree.parent_sep[cid], tree.parent[cid], method=method)


def distribute(state: TreeState, schedule: LayerSchedule, method: str = "auto") -> None:
    """Downward pass: root layer first, each clique messages its children."""
    tree = state.tree
    for cliques, _seps in schedule.distribute_layers():
        for cid in cliques:
            for child, sep_id in tree.children[cid]:
                send_message(state, cid, sep_id, child, method=method, track_norm=False)


def calibrate(state: TreeState, schedule: LayerSchedule | None = None, method: str = "auto") -> None:
    """Full two-phase propagation over a (possibly evidence-reduced) state."""
    if schedule is None:
        schedule = compute_layers(state.tree)
    collect(state, schedule, method=method)
    distribute(state, schedule, method=method)


def is_calibrated(state: TreeState, rtol: float = 1e-7) -> bool:
    """Check the calibration invariant on every separator.

    For each separator S between cliques a, b:
    ``marg(phi_a, S) ∝ marg(phi_b, S) ∝ phi_S``.
    """
    for sep in state.tree.separators:
        ma = marginalize(state.clique_pot[sep.a], sep.domain.names)
        mb = marginalize(state.clique_pot[sep.b], sep.domain.names)
        if not ma.same_distribution(mb, rtol=rtol):
            return False
        if not ma.same_distribution(state.sep_pot[sep.id], rtol=rtol):
            return False
    return True
