"""Soft (likelihood/virtual) evidence.

Hard evidence states "X = x was observed"; soft evidence states "a noisy
detector reported a likelihood vector L(x) ∝ P(report | X = x)".  In the
junction tree it is absorbed by multiplying the likelihood vector into one
clique containing the variable — hard evidence is the special case of a
one-hot vector, uniform L is a no-op.  A standard production feature of
JT engines (Hugin, Netica) layered on the existing reduction machinery.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvidenceError
from repro.jt.structure import TreeState
from repro.potential.domain import Domain
from repro.potential.factor import Potential
from repro.potential.ops import multiply_into


def check_soft_evidence(tree, soft: dict[str, "np.ndarray | list[float]"]
                        ) -> dict[str, np.ndarray]:
    """Validate likelihood vectors: right length, non-negative, not all zero."""
    out: dict[str, np.ndarray] = {}
    for name, vec in soft.items():
        if name not in tree.net:
            raise EvidenceError(f"soft-evidence variable {name!r} not in network")
        var = tree.net.variable(name)
        arr = np.asarray(vec, dtype=np.float64)
        if arr.shape != (var.cardinality,):
            raise EvidenceError(
                f"likelihood for {name!r} has shape {arr.shape}, expected "
                f"({var.cardinality},)"
            )
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise EvidenceError(f"likelihood for {name!r} must be non-negative/finite")
        if arr.sum() <= 0.0:
            raise EvidenceError(f"likelihood for {name!r} is identically zero")
        out[name] = arr
    return out


def split_evidence(evidence: dict) -> tuple[dict, dict]:
    """Partition a mixed evidence mapping into (hard, soft) parts.

    User-facing surfaces (CLI ``--evidence``, the service protocol) accept
    one JSON object where a scalar value means hard evidence and a list
    means a likelihood vector: ``{"smoke": "yes", "xray": [0.7, 0.3]}``.
    Values of any other type are rejected here, before they can reach the
    reduction kernels as confusing shape errors.
    """
    hard: dict = {}
    soft: dict = {}
    for name, value in evidence.items():
        if isinstance(value, (list, tuple)):
            soft[name] = value
        elif isinstance(value, (str, int)) and not isinstance(value, bool):
            hard[name] = value
        else:
            raise EvidenceError(
                f"evidence for {name!r} must be a state (string/int) or a "
                f"likelihood vector (list of floats), got {type(value).__name__}"
            )
    return hard, soft


def absorb_soft_evidence(state: TreeState,
                         soft: dict[str, "np.ndarray | list[float]"]) -> None:
    """Multiply each likelihood vector into the smallest covering clique."""
    tree = state.tree
    for name, vec in check_soft_evidence(tree, soft).items():
        cid = tree.smallest_clique_with(name)
        likelihood = Potential(Domain((tree.net.variable(name),)), vec)
        multiply_into(state.clique_pot[cid], likelihood)
