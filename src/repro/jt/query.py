"""Posterior queries over a calibrated junction tree."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import QueryError
from repro.jt.structure import BatchTreeState, TreeState
from repro.potential.factor import Potential
from repro.potential.ops import marginalize, marginalize_batch, normalize


def posterior(state: TreeState, var_name: str) -> np.ndarray:
    """``P(var | evidence)`` as a probability vector over the var's states.

    Marginalises the smallest clique containing the variable (all cliques
    agree after calibration — the test-suite checks this).
    """
    tree = state.tree
    if var_name not in tree.net:
        raise QueryError(f"unknown variable {var_name!r}")
    cid = tree.smallest_clique_with(var_name)
    marg = marginalize(state.clique_pot[cid], (var_name,))
    total = float(marg.values.sum())
    if total <= 0.0 or not np.isfinite(total):
        raise QueryError(f"cannot normalise posterior of {var_name!r} (total={total})")
    return marg.values / total


def all_posteriors(state: TreeState, targets: tuple[str, ...] = ()) -> dict[str, np.ndarray]:
    """Posteriors for ``targets`` (default: every variable in the network)."""
    names = targets or state.tree.net.variable_names
    return {name: posterior(state, name) for name in names}


def joint_posterior(state: TreeState, var_names: tuple[str, ...]) -> Potential:
    """Joint posterior of variables that co-occur in a single clique."""
    tree = state.tree
    want = set(var_names)
    candidates = [c for c in tree.cliques if want <= set(c.domain.names)]
    if not candidates:
        raise QueryError(
            f"variables {sorted(want)} do not share a clique; "
            "joint queries outside a clique require variable elimination"
        )
    clique = min(candidates, key=lambda c: (c.size, c.id))
    marg = marginalize(state.clique_pot[clique.id], var_names)
    normalize(marg)
    return marg


def log_evidence(state: TreeState) -> float:
    """``log P(evidence)`` from the root table and accumulated constants."""
    root_total = float(state.clique_pot[state.tree.root].values.sum())
    if root_total <= 0.0:
        return -math.inf
    return state.log_norm + math.log(root_total)


# ---------------------------------------------------------------------- batched
def posterior_batch(state: BatchTreeState, var_name: str) -> np.ndarray:
    """``P(var | evidence_i)`` for every case: an ``(n, card)`` row-stochastic
    array, the batched form of :func:`posterior`."""
    tree = state.tree
    if var_name not in tree.net:
        raise QueryError(f"unknown variable {var_name!r}")
    cid = tree.smallest_clique_with(var_name)
    marg = marginalize_batch(state.clique_pot[cid],
                             tree.cliques[cid].domain, (var_name,))
    totals = marg.sum(axis=1)
    bad = np.flatnonzero(~np.isfinite(totals) | (totals <= 0.0))
    if bad.size:
        raise QueryError(
            f"cannot normalise posterior of {var_name!r} in case {bad[0]} "
            f"(total={totals[bad[0]]})"
        )
    return marg / totals[:, None]


def all_posteriors_batch(state: BatchTreeState,
                         targets: tuple[str, ...] = ()) -> dict[str, np.ndarray]:
    """Batched posteriors for ``targets`` (default: every network variable)."""
    names = targets or state.tree.net.variable_names
    return {name: posterior_batch(state, name) for name in names}


def log_evidence_batch(state: BatchTreeState) -> np.ndarray:
    """Per-case ``log P(evidence)``: ``(n,)``, ``-inf`` where impossible."""
    root_totals = state.clique_pot[state.tree.root].sum(axis=1)
    out = np.full(state.n, -np.inf)
    ok = root_totals > 0.0
    out[ok] = state.log_norm[ok] + np.log(root_totals[ok])
    return out
