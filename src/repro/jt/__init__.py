"""Junction-tree construction, calibration and querying.

:func:`repro.jt.engine.JunctionTreeEngine` is the reference sequential
engine (plain two-phase Lauritzen–Spiegelhalter propagation); the Fast-BNI
engines in :mod:`repro.core` and the comparison baselines in
:mod:`repro.baselines` all reuse the structures defined here
(:class:`repro.jt.structure.JunctionTree`, BFS layering, root selection)
and differ only in *how* they schedule and execute the table operations.
"""

from repro.jt.engine import JunctionTreeEngine
from repro.jt.incremental import EvidenceDelta, IncrementalEngine
from repro.jt.structure import Clique, JunctionTree, Separator, compile_junction_tree

__all__ = [
    "JunctionTree",
    "Clique",
    "Separator",
    "compile_junction_tree",
    "JunctionTreeEngine",
    "IncrementalEngine",
    "EvidenceDelta",
]
