"""Evidence absorption into a junction tree (the paper's *reduction* op).

Each observed variable is reduced in exactly one clique containing it (the
smallest, for the least work); running-intersection then propagates the
restriction everywhere during calibration.  Reduction keeps table shapes
fixed (zeroing mode), which is what lets the parallel engines precompute
index maps once per tree and reuse them across the 2000-case workload.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvidenceError
from repro.jt.structure import BatchTreeState, JunctionTree, TreeState
from repro.potential.ops import reduce_evidence_inplace


def check_evidence(tree: JunctionTree, evidence: dict[str, str | int]) -> dict[str, int]:
    """Validate names/states and normalise values to state indices."""
    out: dict[str, int] = {}
    for name, state in evidence.items():
        if name not in tree.net:
            raise EvidenceError(f"evidence variable {name!r} not in network")
        var = tree.net.variable(name)
        out[name] = var.state_index(state)
    return out


def evidence_plan(tree: JunctionTree, evidence: dict[str, int]) -> dict[int, dict[str, int]]:
    """Group evidence by the clique chosen to absorb each variable."""
    plan: dict[int, dict[str, int]] = {}
    for name, state in evidence.items():
        cid = tree.smallest_clique_with(name)
        plan.setdefault(cid, {})[name] = state
    return plan


def absorb_evidence(state: TreeState, evidence: dict[str, str | int]) -> None:
    """Reduce the chosen clique tables in place (zeroing mode)."""
    ev = check_evidence(state.tree, evidence)
    for cid, ev_group in evidence_plan(state.tree, ev).items():
        reduce_evidence_inplace(state.clique_pot[cid], ev_group)


def absorb_evidence_batch(state: BatchTreeState,
                          cases: list[dict[str, str | int]]) -> None:
    """Absorb one evidence dict per case row, vectorised per variable.

    Cases may observe arbitrarily different (heterogeneous) variable sets.
    The absorbing clique for a variable is the same for every case (it
    depends only on the tree), so all cases observing a variable are zeroed
    together with one ``(k, table)`` mask multiply instead of per-case
    Python-level reductions.
    """
    tree = state.tree
    if len(cases) != state.n:
        raise EvidenceError(
            f"batch state holds {state.n} cases but {len(cases)} evidence "
            "dicts were given"
        )
    by_var: dict[str, list[tuple[int, int]]] = {}
    for i, evidence in enumerate(cases):
        for name, st in check_evidence(tree, evidence).items():
            by_var.setdefault(name, []).append((i, st))
    for name, pairs in by_var.items():
        cid = tree.smallest_clique_with(name)
        dom = tree.cliques[cid].domain
        stride, card = dom.stride(name), dom.card(name)
        digits = (np.arange(dom.size, dtype=np.int64) // stride) % card
        rows = np.array([i for i, _ in pairs], dtype=np.intp)
        states = np.array([s for _, s in pairs], dtype=np.int64)
        table = state.clique_pot[cid]
        table[rows] = table[rows] * (digits[None, :] == states[:, None])
