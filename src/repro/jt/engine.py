"""High-level sequential junction-tree engine (the reference implementation).

This is the baseline-quality *correct* engine: compile once, then for each
test case absorb evidence, run two-phase calibration and read posteriors.
Fast-BNI's engines (:mod:`repro.core`) share its compile step and result
format; the benchmark runner treats every engine uniformly through the
``infer(evidence, targets)`` interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.jt.calibrate import calibrate
from repro.jt.evidence import absorb_evidence
from repro.jt.layers import LayerSchedule, compute_layers
from repro.jt.query import all_posteriors, log_evidence
from repro.jt.root import select_root
from repro.jt.structure import JunctionTree, compile_junction_tree


@dataclass
class InferenceResult:
    """Posteriors plus the evidence likelihood for one test case."""

    posteriors: dict[str, np.ndarray]
    log_evidence: float
    meta: dict[str, float] = field(default_factory=dict)

    def posterior(self, name: str) -> np.ndarray:
        return self.posteriors[name]


@dataclass
class BatchInferenceResult:
    """Columnar results for a calibrated batch of ``n`` cases.

    ``posteriors[name]`` is an ``(n, card)`` array (row *i* = case *i*'s
    posterior) and ``log_evidence`` is ``(n,)`` — the memory layout the
    batched engine computes natively.  :meth:`case` materialises the
    per-case :class:`InferenceResult` view, so batched and looped runs are
    interchangeable for callers that iterate.
    """

    posteriors: dict[str, np.ndarray]
    log_evidence: np.ndarray
    meta: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.log_evidence.shape[0])

    def posterior(self, name: str) -> np.ndarray:
        return self.posteriors[name]

    def case(self, i: int) -> InferenceResult:
        """Per-case view (shares the underlying batch arrays)."""
        if not 0 <= i < len(self):
            raise IndexError(f"case {i} out of range (batch of {len(self)})")
        return InferenceResult(
            posteriors={name: vals[i] for name, vals in self.posteriors.items()},
            log_evidence=float(self.log_evidence[i]),
        )

    def __iter__(self):
        return (self.case(i) for i in range(len(self)))


class JunctionTreeEngine:
    """Sequential reference engine.

    Parameters
    ----------
    net:
        A validated Bayesian network.
    heuristic:
        Triangulation heuristic (see :mod:`repro.graph.triangulate`).
    root_strategy:
        Root selection (see :mod:`repro.jt.root`); the reference engine
        defaults to the paper's ``"center"`` since it never hurts.
    method:
        Potential-op implementation, ``"ndview"`` or ``"indexmap"``.
    """

    name = "jt-sequential"

    def __init__(
        self,
        net: BayesianNetwork,
        heuristic: str = "min-fill",
        root_strategy: str = "center",
        method: str = "auto",
    ) -> None:
        self.net = net
        self.method = method
        self.tree: JunctionTree = compile_junction_tree(net, heuristic=heuristic)
        select_root(self.tree, root_strategy)
        self.schedule: LayerSchedule = compute_layers(self.tree)

    def infer(
        self,
        evidence: dict[str, str | int] | None = None,
        targets: tuple[str, ...] = (),
    ) -> InferenceResult:
        """Run one inference: evidence in, posteriors out."""
        state = self.tree.fresh_state()
        if evidence:
            absorb_evidence(state, evidence)
        calibrate(state, self.schedule, method=self.method)
        return InferenceResult(
            posteriors=all_posteriors(state, targets),
            log_evidence=log_evidence(state),
        )

    def stats(self) -> dict[str, float]:
        s = self.tree.stats()
        s["num_layers"] = self.schedule.num_layers
        return s
