"""BFS layering of the junction tree (paper §2, inter-clique parallelism).

Fast-BNI "views all the cliques and separators as nodes of the tree and
marks the layer where each of them is located".  With the root clique at
layer 0, a clique at depth *d* (in clique hops) sits at layer ``2d`` and
the separator connecting it to its parent at layer ``2d − 1``.

All cliques in one layer have pairwise-disjoint message dependencies, so
the collect pass can process layers deepest-first and the distribute pass
shallowest-first, with a barrier per layer — that is the unit of
coarse-grained parallelism in every parallel engine here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jt.structure import JunctionTree


@dataclass(frozen=True)
class LayerSchedule:
    """Cliques and separators grouped by BFS layer for a given root.

    ``clique_layers[d]`` lists clique ids at clique-depth ``d`` (tree layer
    ``2d``); ``separator_layers[d]`` lists the separator ids between depth
    ``d`` and ``d+1`` cliques (tree layer ``2d+1``).
    """

    root: int
    clique_layers: tuple[tuple[int, ...], ...]
    separator_layers: tuple[tuple[int, ...], ...]

    @property
    def num_layers(self) -> int:
        """Total layers counting both cliques and separators (paper metric)."""
        return len(self.clique_layers) + len(self.separator_layers)

    @property
    def depth(self) -> int:
        """Clique-depth of the deepest clique."""
        return len(self.clique_layers) - 1

    def collect_layers(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Deepest-first (cliques, parent separators) pairs for the collect pass.

        Each element pairs the cliques at depth *d* (senders) with the
        separators to their parents.  The root's layer is excluded — it
        sends no upward message.
        """
        out = []
        for d in range(len(self.clique_layers) - 1, 0, -1):
            out.append((self.clique_layers[d], self.separator_layers[d - 1]))
        return out

    def distribute_layers(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Shallowest-first (cliques, child separators) pairs for distribute.

        Pairs the cliques at depth *d* (senders) with the separators to
        their children at depth *d*+1.  The deepest layer is excluded — it
        has no children.
        """
        out = []
        for d in range(len(self.clique_layers) - 1):
            out.append((self.clique_layers[d], self.separator_layers[d]))
        return out


def compute_layers(tree: JunctionTree, root: int | None = None) -> LayerSchedule:
    """Layer the tree from ``root`` (default: the tree's current root)."""
    if root is not None and root != tree.root:
        tree.set_root(root)
    depth = tree.depth
    max_d = max(depth)
    clique_layers: list[list[int]] = [[] for _ in range(max_d + 1)]
    for cid, d in enumerate(depth):
        clique_layers[d].append(cid)
    separator_layers: list[list[int]] = [[] for _ in range(max_d)] if max_d else []
    for cid in range(tree.num_cliques):
        if tree.parent[cid] >= 0:
            separator_layers[depth[cid] - 1].append(tree.parent_sep[cid])
    return LayerSchedule(
        root=tree.root,
        clique_layers=tuple(tuple(sorted(layer)) for layer in clique_layers),
        separator_layers=tuple(tuple(sorted(layer)) for layer in separator_layers),
    )
