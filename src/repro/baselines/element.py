"""Element-wise parallel JT — Zheng '13 GPU dissertation (Table 1 "Elem.").

Zheng maps each potential-table entry to one GPU thread; the canonical CPU
analog is a fully vectorised element-wise kernel per table operation (one
SIMD-style sweep over all entries, no chunk dispatch, no host-side loops).
Messages run in strictly sequential order.  Per message the formulation
materialises the extended new and old separator tables and divides
element-wise — the direct translation of the per-element GPU kernels,
costing two table-sized temporaries that Fast-BNI's fused ratio-absorb
avoids.
"""

from __future__ import annotations

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.core.config import FastBNIConfig
from repro.core.fastbni import FastBNI, MessagePlan
from repro.core.primitives import chunk_dst_indices
from repro.jt.engine import InferenceResult
from repro.jt.structure import TreeState


class ElementEngine:
    """Zheng-style element-wise (vectorised) junction tree."""

    name = "element"

    def __init__(self, net: BayesianNetwork, heuristic: str = "min-fill") -> None:
        self._engine = FastBNI(net, FastBNIConfig(
            mode="seq",
            heuristic=heuristic,
            root_strategy="first",
        ))

    # ------------------------------------------------------------------ infer
    def infer(
        self,
        evidence: dict[str, str | int] | None = None,
        targets: tuple[str, ...] = (),
    ) -> InferenceResult:
        engine = self._engine
        from repro.jt.evidence import absorb_evidence
        from repro.jt.query import all_posteriors

        state = engine.tree.fresh_state()
        if evidence:
            absorb_evidence(state, evidence)
        tree = engine.tree
        for cliques, _seps in engine.schedule.collect_layers():
            for cid in cliques:
                plan = engine.plans[cid]
                self._message(state, src=cid, dst=plan.parent, plan=plan,
                              up=True, track=True)
        for cliques, _seps in engine.schedule.distribute_layers():
            for cid in cliques:
                for child, _sep in tree.children[cid]:
                    plan = engine.plans[child]
                    self._message(state, src=cid, dst=child, plan=plan,
                                  up=False, track=False)
        return InferenceResult(
            posteriors=all_posteriors(state, targets),
            log_evidence=engine._log_evidence(state),
        )

    def _message(self, state: TreeState, src: int, dst: int,
                 plan: MessagePlan, up: bool, track: bool) -> None:
        engine = self._engine
        marg = plan.marg_up if up else plan.marg_down
        absorb = plan.absorb_up if up else plan.absorb_down
        src_vals = state.clique_pot[src].values
        dst_vals = state.clique_pot[dst].values

        # element-wise marginalization kernel (one thread per entry → scatter)
        imap = chunk_dst_indices(0, src_vals.size, marg)
        new_sep = np.bincount(imap, weights=src_vals, minlength=plan.sep_size)
        new_sep = engine.normalize_message(state, new_sep, track=track)

        # element-wise extension kernels: materialise both separator tables
        # at clique resolution (the per-element GPU formulation)
        emap = chunk_dst_indices(0, dst_vals.size, absorb)
        ext_new = new_sep[emap]
        ext_old = state.sep_pot[plan.sep_id].values[emap]

        # element-wise divide-multiply kernel with 0/0 = 0
        quot = np.zeros_like(ext_new)
        np.divide(ext_new, ext_old, out=quot, where=ext_old != 0)
        dst_vals *= quot
        state.sep_pot[plan.sep_id].values = new_sep

    def stats(self) -> dict[str, float]:
        return self._engine.stats()

    def close(self) -> None:
        self._engine.close()

    def __enter__(self) -> "ElementEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
