"""Approximate inference: likelihood weighting and Gibbs sampling.

The exact engines are the paper's subject; these samplers complete the
substrate a downstream user expects from a BN library and serve as slow
*statistical* oracles: their estimates must converge to the exact
posteriors as the sample count grows, and the vectorised production
samplers (:mod:`repro.approx`) are cross-checked against them in the test
suite — which guards against errors that systematic implementations could
share.

Both engines accept ``seed``/``rng`` as an int, ``None`` or an existing
:class:`numpy.random.Generator` (threaded through
:func:`repro.utils.rng.as_rng`).  With an int seed every ``posterior(s)``
call draws the same stream, making reference runs reproducible; passing a
generator threads one stream through a pipeline instead.
"""

from __future__ import annotations

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import EvidenceError
from repro.utils.rng import as_rng


class LikelihoodWeightingEngine:
    """Importance sampling with evidence clamped and weighted in."""

    name = "likelihood-weighting"

    def __init__(self, net: BayesianNetwork, num_samples: int = 10_000,
                 seed: "int | None | np.random.Generator" = 0, *,
                 rng: "int | None | np.random.Generator" = None) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        net.validate()
        self.net = net
        self.num_samples = num_samples
        self.seed = rng if rng is not None else seed
        self._order = net.topological_order()

    def posterior(self, target: str, evidence: dict[str, str | int] | None = None
                  ) -> np.ndarray:
        return self.posteriors((target,), evidence)[target]

    def posteriors(self, targets, evidence: dict[str, str | int] | None = None
                   ) -> dict[str, np.ndarray]:
        rng = as_rng(self.seed)
        ev = {n: self.net.variable(n).state_index(s)
              for n, s in (evidence or {}).items()}
        acc = {t: np.zeros(self.net.variable(t).cardinality) for t in targets}
        total_weight = 0.0
        n = self.num_samples
        # Vectorised over samples, one variable at a time.
        columns: dict[str, np.ndarray] = {}
        weights = np.ones(n)
        for var in self._order:
            cpt = self.net.cpt(var.name)
            if cpt.parents:
                parent_cols = np.stack([columns[p.name] for p in cpt.parents])
                rows = cpt.table[tuple(parent_cols)]
            else:
                rows = np.broadcast_to(cpt.table, (n, var.cardinality))
            if var.name in ev:
                s = ev[var.name]
                columns[var.name] = np.full(n, s, dtype=np.int64)
                weights = weights * rows[:, s]
            else:
                cdf = np.cumsum(rows, axis=1)
                u = rng.random(n)[:, None]
                columns[var.name] = (u >= cdf).sum(axis=1).clip(0, var.cardinality - 1)
        total_weight = float(weights.sum())
        if total_weight <= 0.0:
            raise EvidenceError("all samples have zero weight (evidence too unlikely)")
        for t in targets:
            np.add.at(acc[t], columns[t], weights)
            acc[t] /= total_weight
        return acc


class GibbsSamplingEngine:
    """Single-site Gibbs sampler over the unobserved variables."""

    name = "gibbs"

    def __init__(self, net: BayesianNetwork, num_samples: int = 5_000,
                 burn_in: int = 500,
                 seed: "int | None | np.random.Generator" = 0, *,
                 rng: "int | None | np.random.Generator" = None) -> None:
        if num_samples < 1 or burn_in < 0:
            raise ValueError("invalid sampler parameters")
        net.validate()
        self.net = net
        self.num_samples = num_samples
        self.burn_in = burn_in
        self.seed = rng if rng is not None else seed
        # Markov blanket factors per variable: own CPT + children CPTs.
        self._blanket: dict[str, list] = {v.name: [net.cpt(v.name)] for v in net.variables}
        for cpt in net.cpts:
            for p in cpt.parents:
                self._blanket[p.name].append(cpt)

    def _conditional(self, name: str, state: dict[str, int]) -> np.ndarray:
        var = self.net.variable(name)
        logits = np.zeros(var.cardinality)
        for cpt in self._blanket[name]:
            # Evaluate the CPT row for each candidate state of `name`.
            idx = []
            for v in cpt.variables:
                idx.append(slice(None) if v.name == name else state[v.name])
            vals = cpt.table[tuple(idx)]
            logits = logits + np.log(np.maximum(vals, 1e-300))
        probs = np.exp(logits - logits.max())
        return probs / probs.sum()

    def posterior(self, target: str, evidence: dict[str, str | int] | None = None
                  ) -> np.ndarray:
        return self.posteriors((target,), evidence)[target]

    def posteriors(self, targets, evidence: dict[str, str | int] | None = None
                   ) -> dict[str, np.ndarray]:
        """Posteriors for several targets from one chain (one shared sweep)."""
        rng = as_rng(self.seed)
        ev = {n: self.net.variable(n).state_index(s)
              for n, s in (evidence or {}).items()}
        state: dict[str, int] = dict(ev)
        # Initialise hidden variables by forward sampling consistent order.
        for var in self.net.topological_order():
            if var.name not in state:
                cpt = self.net.cpt(var.name)
                idx = tuple(state[p.name] for p in cpt.parents)
                state[var.name] = int(rng.choice(var.cardinality, p=cpt.table[idx]))
        hidden = [v.name for v in self.net.variables if v.name not in ev]
        counts = {t: np.zeros(self.net.variable(t).cardinality) for t in targets}
        for it in range(self.burn_in + self.num_samples):
            for name in hidden:
                probs = self._conditional(name, state)
                state[name] = int(rng.choice(len(probs), p=probs))
            if it >= self.burn_in:
                for t in counts:
                    counts[t][state[t]] += 1
        return {t: c / c.sum() for t, c in counts.items()}
