"""Direct coarse-grained parallel JT — Kozlov & Singh '94 (Table 1 "Dir.").

A parallel Lauritzen–Spiegelhalter pass with *clique-granularity* tasks and
no structural optimisation: the tree is rooted at whatever clique comes
first (no root selection) and each message is a whole-table unit of work
(no flattening).  Load imbalance between cliques of very different sizes
and the tree height both limit it — the two effects Fast-BNI's hybrid
design addresses.

Implementation: reuses the shared inter-clique executor
(:mod:`repro.core.inter`) through a FastBNI engine pinned to
``mode="inter", root_strategy="first"``; the comparison against
Fast-BNI-par therefore isolates exactly the paper's contribution (BFS
layer flattening + root selection + fused primitives).
"""

from __future__ import annotations

from repro.bn.network import BayesianNetwork
from repro.core.config import FastBNIConfig
from repro.core.fastbni import FastBNI
from repro.jt.engine import InferenceResult


class DirectEngine:
    """Kozlov–Singh-style coarse-grained parallel junction tree."""

    def __init__(
        self,
        net: BayesianNetwork,
        backend: str = "thread",
        num_workers: int | None = None,
        heuristic: str = "min-fill",
    ) -> None:
        self._engine = FastBNI(net, FastBNIConfig(
            mode="inter",
            backend=backend,
            num_workers=num_workers,
            heuristic=heuristic,
            root_strategy="first",
        ))

    @property
    def name(self) -> str:
        return f"direct[{self._engine.backend.name}x{self._engine.backend.num_workers}]"

    def infer(
        self,
        evidence: dict[str, str | int] | None = None,
        targets: tuple[str, ...] = (),
    ) -> InferenceResult:
        return self._engine.infer(evidence, targets)

    def stats(self) -> dict[str, float]:
        return self._engine.stats()

    def close(self) -> None:
        self._engine.close()

    def __enter__(self) -> "DirectEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
