"""Brute-force inference by joint enumeration — the ground-truth oracle.

Materialises the full joint distribution (exponential in network size) and
answers queries by direct summation.  Usable only for networks whose joint
fits in memory (≤ ~20 binary variables); every other engine is validated
against it on small networks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import EvidenceError, NetworkError
from repro.jt.engine import InferenceResult
from repro.potential.domain import Domain
from repro.potential.factor import Potential
from repro.potential.ops import marginalize, multiply_into, reduce_evidence_inplace

#: Refuse joints larger than this many entries.
MAX_JOINT_SIZE = 8_000_000


class EnumerationEngine:
    """Exact inference by materialising the joint distribution."""

    name = "enumeration"

    def __init__(self, net: BayesianNetwork) -> None:
        net.validate()
        self.net = net
        joint_size = 1
        for v in net.variables:
            joint_size *= v.cardinality
        if joint_size > MAX_JOINT_SIZE:
            raise NetworkError(
                f"joint has {joint_size} entries; enumeration supports "
                f"at most {MAX_JOINT_SIZE}"
            )
        self.domain = Domain(net.variables)
        joint = Potential(self.domain)
        for cpt in net.cpts:
            multiply_into(joint, Potential.from_cpt(cpt))
        self.joint = joint

    def infer(
        self,
        evidence: dict[str, str | int] | None = None,
        targets: tuple[str, ...] = (),
    ) -> InferenceResult:
        work = self.joint.copy()
        if evidence:
            for name in evidence:
                if name not in self.net:
                    raise EvidenceError(f"evidence variable {name!r} not in network")
            reduce_evidence_inplace(work, dict(evidence))
        p_e = float(work.values.sum())
        if p_e <= 0.0:
            raise EvidenceError("evidence has zero probability")
        names = targets or self.net.variable_names
        posteriors: dict[str, np.ndarray] = {}
        for name in names:
            marg = marginalize(work, (name,))
            posteriors[name] = marg.values / p_e
        return InferenceResult(posteriors=posteriors, log_evidence=math.log(p_e))
