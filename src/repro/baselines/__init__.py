"""Comparison implementations and correctness oracles.

The paper's Table 1 compares Fast-BNI against four existing systems; each
is re-implemented here from its published description (see DESIGN.md for
the substitution notes):

* :mod:`repro.baselines.unbbayes` — UnBBayes-style sequential Hugin JT
  (straightforward pure-Python, no index-map/NumPy inner kernels);
* :mod:`repro.baselines.direct` — Kozlov & Singh '94 coarse-grained
  inter-clique parallelism;
* :mod:`repro.baselines.primitive` — Xia & Prasanna '07 node-level
  primitives (fine-grained, per-table-op parallel loops);
* :mod:`repro.baselines.element` — Zheng '13 element-wise parallelism
  (GPU threads → vectorised element kernels).

Plus two independent oracles used only for correctness:

* :mod:`repro.baselines.enumeration` — brute-force joint enumeration;
* :mod:`repro.baselines.variable_elimination` — sum-product VE.

Submodules are imported lazily so that e.g. the oracles can be used in
isolation.
"""

from __future__ import annotations

from importlib import import_module

_EXPORTS = {
    "UnBBayesEngine": "repro.baselines.unbbayes",
    "DirectEngine": "repro.baselines.direct",
    "PrimitiveEngine": "repro.baselines.primitive",
    "ElementEngine": "repro.baselines.element",
    "EnumerationEngine": "repro.baselines.enumeration",
    "VariableEliminationEngine": "repro.baselines.variable_elimination",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        return getattr(import_module(_EXPORTS[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
