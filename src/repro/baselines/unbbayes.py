"""UnBBayes-style sequential junction-tree engine (Table 1's seq baseline).

UnBBayes is a general-purpose Java BN library; its JT implementation walks
potential tables entry-by-entry with per-entry index arithmetic and no
vectorised kernels.  This re-implementation mirrors that style in pure
Python — tables are ``list[float]``, every table operation is an explicit
``for`` loop over entries, message passing is recursive DFS — so that the
Fast-BNI-seq vs UnBBayes comparison measures what the paper's does: the
value of the index-mapping formulation + tight kernels over a
straightforward general-purpose implementation.

The algorithm itself is the same exact Hugin propagation as every other
engine here (it must be: all engines agree to 1e-9 on every posterior).
"""

from __future__ import annotations

import math

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import EvidenceError
from repro.jt.engine import InferenceResult
from repro.jt.structure import JunctionTree, compile_junction_tree


class _Table:
    """A pure-Python potential table: variable names, cards, flat list."""

    __slots__ = ("names", "cards", "strides", "values")

    def __init__(self, names: list[str], cards: list[int]) -> None:
        self.names = names
        self.cards = cards
        self.strides = [1] * len(cards)
        for i in range(len(cards) - 2, -1, -1):
            self.strides[i] = self.strides[i + 1] * cards[i + 1]
        size = 1
        for c in cards:
            size *= c
        self.values = [1.0] * size

    def size(self) -> int:
        return len(self.values)

    def state_of(self, entry: int, axis: int) -> int:
        return (entry // self.strides[axis]) % self.cards[axis]


class UnBBayesEngine:
    """Sequential Hugin JT in deliberately plain Python (no NumPy kernels)."""

    name = "unbbayes"

    def __init__(self, net: BayesianNetwork, heuristic: str = "min-fill") -> None:
        net.validate()
        self.net = net
        # Same compile pipeline (UnBBayes also builds a junction tree; the
        # paper's measurement is the inference pass).
        self.tree: JunctionTree = compile_junction_tree(net, heuristic=heuristic)
        # Pre-extract CPT contents into plain Python structures.
        self._clique_meta: list[_Table] = []
        self._base: list[list[float]] = []
        for clique in self.tree.cliques:
            t = _Table([v.name for v in clique.domain.variables],
                       [v.cardinality for v in clique.domain.variables])
            for k in clique.cpt_indices:
                cpt = self.tree.net.cpts[k]
                # positions of the CPT variables inside the clique
                axes = [t.names.index(v.name) for v in cpt.variables]
                flat = cpt.table.reshape(-1)
                cpt_strides = [1] * len(cpt.variables)
                for i in range(len(cpt.variables) - 2, -1, -1):
                    cpt_strides[i] = cpt_strides[i + 1] * cpt.variables[i + 1].cardinality
                for e in range(t.size()):
                    src = 0
                    for axis, stride in zip(axes, cpt_strides):
                        src += t.state_of(e, axis) * stride
                    t.values[e] *= float(flat[src])
            self._clique_meta.append(t)
            self._base.append(list(t.values))

    # ------------------------------------------------------------------ infer
    def infer(
        self,
        evidence: dict[str, str | int] | None = None,
        targets: tuple[str, ...] = (),
    ) -> InferenceResult:
        tree = self.tree
        cliques = [_copy_table(t, base) for t, base in zip(self._clique_meta, self._base)]
        seps: list[list[float] | None] = [None] * tree.num_separators
        log_norm = 0.0

        # Evidence: zero inconsistent entries of one clique per variable.
        if evidence:
            for name, state in evidence.items():
                if name not in self.net:
                    raise EvidenceError(f"evidence variable {name!r} not in network")
                var = self.net.variable(name)
                s = var.state_index(state)
                cid = tree.smallest_clique_with(name)
                t = cliques[cid]
                axis = t.names.index(name)
                for e in range(t.size()):
                    if t.state_of(e, axis) != s:
                        t.values[e] = 0.0

        # Recursive collect / distribute from the tree's current root.
        order = tree.bfs_order()
        for cid in reversed(order):
            par = tree.parent[cid]
            if par >= 0:
                log_norm += self._absorb(cliques, seps, src=cid, dst=par,
                                         sep_id=tree.parent_sep[cid])
        root_total = math.fsum(cliques[tree.root].values)
        if root_total <= 0.0:
            raise EvidenceError("evidence has zero probability")
        for cid in order:
            for child, sep_id in tree.children[cid]:
                self._absorb(cliques, seps, src=cid, dst=child, sep_id=sep_id)

        names = targets or self.net.variable_names
        posteriors: dict[str, np.ndarray] = {}
        for name in names:
            cid = tree.smallest_clique_with(name)
            t = cliques[cid]
            axis = t.names.index(name)
            acc = [0.0] * t.cards[axis]
            for e, v in enumerate(t.values):
                acc[t.state_of(e, axis)] += v
            total = math.fsum(acc)
            posteriors[name] = np.asarray([a / total for a in acc])
        return InferenceResult(
            posteriors=posteriors,
            log_evidence=log_norm + math.log(root_total),
        )

    # ---------------------------------------------------------------- message
    def _absorb(self, cliques: list[_Table], seps: list[list[float] | None],
                src: int, dst: int, sep_id: int) -> float:
        """Entry-loop Hugin message src → dst; returns log(message mass)."""
        tree = self.tree
        sep = tree.separators[sep_id]
        sep_names = [v.name for v in sep.domain.variables]
        sep_cards = [v.cardinality for v in sep.domain.variables]
        sep_strides = [1] * len(sep_cards)
        for i in range(len(sep_cards) - 2, -1, -1):
            sep_strides[i] = sep_strides[i + 1] * sep_cards[i + 1]
        sep_size = 1
        for c in sep_cards:
            sep_size *= c

        # marginalize src → new separator
        t_src = cliques[src]
        src_axes = [t_src.names.index(n) for n in sep_names]
        new_sep = [0.0] * sep_size
        for e, v in enumerate(t_src.values):
            m = 0
            for axis, stride in zip(src_axes, sep_strides):
                m += t_src.state_of(e, axis) * stride
            new_sep[m] += v
        total = math.fsum(new_sep)
        if total <= 0.0:
            raise EvidenceError("evidence has zero probability (empty message)")
        for m in range(sep_size):
            new_sep[m] /= total

        # ratio = new / old  (old is implicitly uniform 1 before first touch)
        old = seps[sep_id]
        ratio = [0.0] * sep_size
        for m in range(sep_size):
            o = 1.0 if old is None else old[m]
            ratio[m] = new_sep[m] / o if o != 0.0 else 0.0

        # extend-multiply into dst
        t_dst = cliques[dst]
        dst_axes = [t_dst.names.index(n) for n in sep_names]
        for e in range(t_dst.size()):
            m = 0
            for axis, stride in zip(dst_axes, sep_strides):
                m += t_dst.state_of(e, axis) * stride
            t_dst.values[e] *= ratio[m]
        seps[sep_id] = new_sep
        return math.log(total)


def _copy_table(meta: _Table, base: list[float]) -> _Table:
    t = _Table.__new__(_Table)
    t.names = meta.names
    t.cards = meta.cards
    t.strides = meta.strides
    t.values = list(base)
    return t
