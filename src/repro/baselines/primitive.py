"""Node-level primitives — Xia & Prasanna '07 (Table 1 "Prim.").

Their design: a strictly sequential message schedule, with each potential
table *operation* exposed as its own data-parallel primitive.  Per message
this dispatches **three** parallel batches (marginalize, extend, multiply)
plus a serial separator division — versus two fused batches in Fast-BNI's
intra mode and two per *layer* in hybrid mode.  The extension primitive
also materialises the full extended table (their formulation), costing an
extra table-sized temporary per message.  Those per-op invocation and
materialisation overheads are exactly the "large parallelization overhead
since the table operations are invoked frequently" the paper cites (§1).
"""

from __future__ import annotations

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.core.config import FastBNIConfig
from repro.core.fastbni import FastBNI, MessagePlan
from repro.core.primitives import chunk_dst_indices, marg_chunk, ratio_vector
from repro.jt.engine import InferenceResult
from repro.jt.structure import TreeState
from repro.parallel.chunking import chunk_ranges
from repro.parallel.sharedmem import ArrayRef


def extend_chunk(out: ArrayRef, lo: int, hi: int, triples, sep_values: np.ndarray,
                 imap: np.ndarray | None = None) -> None:
    """Materialise ``extend(sep_values)`` over ``out[lo:hi]`` (X-P primitive 3)."""
    out.resolve()[lo:hi] = sep_values[chunk_dst_indices(lo, hi, triples, imap)]


def multiply_chunk(dst: ArrayRef, other: ArrayRef, lo: int, hi: int) -> None:
    """Pointwise ``dst[lo:hi] *= other[lo:hi]`` (X-P primitive 4)."""
    dst.resolve()[lo:hi] *= other.resolve()[lo:hi]


class PrimitiveEngine:
    """Xia–Prasanna-style per-operation parallel junction tree."""

    def __init__(
        self,
        net: BayesianNetwork,
        backend: str = "thread",
        num_workers: int | None = None,
        heuristic: str = "min-fill",
        min_chunk: int = 2048,
    ) -> None:
        # Reuse FastBNI's compile + plans; calibration below is X-P's own.
        self._engine = FastBNI(net, FastBNIConfig(
            mode="intra",  # placeholder; we drive calibration ourselves
            backend=backend,
            num_workers=num_workers,
            heuristic=heuristic,
            root_strategy="first",
            min_chunk=min_chunk,
        ))
        # Scratch buffer for materialised extensions, one per clique size.
        self._scratch = np.empty(
            max(c.size for c in self._engine.tree.cliques), dtype=np.float64
        )

    @property
    def name(self) -> str:
        return f"primitive[{self._engine.backend.name}x{self._engine.backend.num_workers}]"

    # ------------------------------------------------------------------ infer
    def infer(
        self,
        evidence: dict[str, str | int] | None = None,
        targets: tuple[str, ...] = (),
    ) -> InferenceResult:
        engine = self._engine
        from repro.jt.evidence import absorb_evidence
        from repro.jt.query import all_posteriors

        state = engine.tree.fresh_state()
        if evidence:
            absorb_evidence(state, evidence)
        refs = [ArrayRef.wrap(p.values) for p in state.clique_pot]
        tree = engine.tree
        for cliques, _seps in engine.schedule.collect_layers():
            for cid in cliques:
                plan = engine.plans[cid]
                self._message(state, refs, src=cid, dst=plan.parent, plan=plan,
                              up=True, track=True)
        for cliques, _seps in engine.schedule.distribute_layers():
            for cid in cliques:
                for child, _sep in tree.children[cid]:
                    plan = engine.plans[child]
                    self._message(state, refs, src=cid, dst=child, plan=plan,
                                  up=False, track=False)
        return InferenceResult(
            posteriors=all_posteriors(state, targets),
            log_evidence=engine._log_evidence(state),
        )

    # ---------------------------------------------------------------- message
    def _chunks(self, size: int) -> list[tuple[int, int]]:
        engine = self._engine
        if size < engine.config.min_chunk:
            return [(0, size)]
        return chunk_ranges(size, engine.backend.num_workers * engine.config.chunks_per_worker,
                            min_chunk=engine.config.min_chunk)

    def _message(self, state: TreeState, refs: list[ArrayRef], src: int, dst: int,
                 plan: MessagePlan, up: bool, track: bool) -> None:
        engine = self._engine
        marg = plan.marg_up if up else plan.marg_down
        absorb = plan.absorb_up if up else plan.absorb_down
        src_size = engine.tree.cliques[src].size
        dst_size = engine.tree.cliques[dst].size

        # primitive 1: parallel marginalization (per-message dispatch)
        marg_map = engine.get_map(src, plan.sep_id, src_size, marg)
        absorb_map = engine.get_map(dst, plan.sep_id, dst_size, absorb)
        tasks = [(marg_chunk, (refs[src], lo, hi, marg, plan.sep_size, marg_map))
                 for lo, hi in self._chunks(src_size)]
        new_sep = np.sum(engine.backend.run_batch(tasks), axis=0)
        new_sep = engine.normalize_message(state, new_sep, track=track)

        # primitive 2: separator division (serial: separator tables are small)
        ratio = ratio_vector(new_sep, state.sep_pot[plan.sep_id].values)
        state.sep_pot[plan.sep_id].values = new_sep

        # primitive 3: parallel extension, materialised into scratch
        scratch = self._scratch[:dst_size]
        scratch_ref = ArrayRef.wrap(scratch)
        tasks = [(extend_chunk, (scratch_ref, lo, hi, absorb, ratio, absorb_map))
                 for lo, hi in self._chunks(dst_size)]
        engine.backend.run_batch(tasks)

        # primitive 4: parallel pointwise multiplication
        tasks = [(multiply_chunk, (refs[dst], scratch_ref, lo, hi))
                 for lo, hi in self._chunks(dst_size)]
        engine.backend.run_batch(tasks)

    def stats(self) -> dict[str, float]:
        return self._engine.stats()

    def close(self) -> None:
        self._engine.close()

    def __enter__(self) -> "PrimitiveEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
