"""Sum-product variable elimination — the medium-scale correctness oracle.

Answers one marginal per query by eliminating all other variables with the
min-fill order.  Independent of the junction-tree code path (uses only the
potential algebra), so agreement between VE and any JT engine is strong
evidence both are right.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import EvidenceError
from repro.graph.moralize import moralize
from repro.graph.triangulate import triangulate
from repro.jt.engine import InferenceResult
from repro.potential.factor import Potential
from repro.potential.ops import marginalize, multiply, normalize, reduce_evidence


class VariableEliminationEngine:
    """Exact single-marginal inference by variable elimination."""

    name = "variable-elimination"

    def __init__(self, net: BayesianNetwork, heuristic: str = "min-fill") -> None:
        net.validate()
        self.net = net
        cards = {v.name: v.cardinality for v in net.variables}
        self.order = triangulate(moralize(net), heuristic, cards).order

    def _marginal(self, target: str, evidence: dict[str, str | int]) -> tuple[np.ndarray, float]:
        """Return (posterior vector of target, P(target, evidence) mass)."""
        # Slice evidence out of each factor up front (shrinks tables).
        factors: list[Potential] = []
        for cpt in self.net.cpts:
            pot = Potential.from_cpt(cpt)
            if evidence:
                pot = reduce_evidence(pot, dict(evidence), mode="slice")
            factors.append(pot)
        for name in self.order:
            if name == target or name in evidence:
                continue
            bucket = [f for f in factors if name in f.domain]
            if not bucket:
                continue
            rest = [f for f in factors if name not in f.domain]
            prod = bucket[0]
            for f in bucket[1:]:
                prod = multiply(prod, f)
            keep = tuple(n for n in prod.domain.names if n != name)
            rest.append(marginalize(prod, keep))
            factors = rest
        # Remaining factors mention only `target` (or nothing).
        result = Potential.ones((self.net.variable(target),))
        for f in factors:
            if len(f.domain) == 0:
                result.values *= float(f.values[0])
            else:
                result = multiply(result, f)
                result = marginalize(result, (target,))
        mass = float(result.values.sum())
        if mass <= 0.0:
            raise EvidenceError("evidence has zero probability")
        normalize(result)
        return result.values, mass

    def infer(
        self,
        evidence: dict[str, str | int] | None = None,
        targets: tuple[str, ...] = (),
    ) -> InferenceResult:
        evidence = dict(evidence or {})
        for name in evidence:
            if name not in self.net:
                raise EvidenceError(f"evidence variable {name!r} not in network")
        names = targets or self.net.variable_names
        posteriors: dict[str, np.ndarray] = {}
        log_p = None
        for name in names:
            if name in evidence:
                # Posterior of an observed variable is a point mass.
                var = self.net.variable(name)
                vec = np.zeros(var.cardinality)
                vec[var.state_index(evidence[name])] = 1.0
                posteriors[name] = vec
                continue
            posteriors[name], mass = self._marginal(name, evidence)
            if log_p is None:
                log_p = math.log(mass)
        if log_p is None:
            # All queried variables were observed; compute P(e) via any one.
            first_free = next((n for n in self.net.variable_names if n not in evidence), None)
            if first_free is None:
                log_p = self.net.log_joint(evidence)  # fully observed network
            else:
                _, mass = self._marginal(first_free, evidence)
                log_p = math.log(mass)
        return InferenceResult(posteriors=posteriors, log_evidence=log_p)
