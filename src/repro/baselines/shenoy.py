"""Shenoy–Shafer architecture: division-free junction-tree propagation.

The alternative message-passing architecture to Hugin's: separators store
*two directed messages* instead of one table, and a clique's belief is its
initial potential times all incoming messages — no division anywhere.
Hugin trades the division for smaller working sets; Shenoy–Shafer trades
memory for divisions and is numerically cleaner around zeros.

Included as an architectural cross-check: it shares no update formulas
with the Hugin-style engines, so agreement on posteriors is strong
evidence for both (and it exercises the potential algebra differently).
"""

from __future__ import annotations

import math

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import EvidenceError
from repro.jt.engine import InferenceResult
from repro.jt.evidence import absorb_evidence
from repro.jt.root import select_root
from repro.jt.structure import compile_junction_tree
from repro.potential.factor import Potential
from repro.potential.ops import marginalize, multiply_into


class ShenoyShaferEngine:
    """Division-free two-message junction-tree engine."""

    name = "shenoy-shafer"

    def __init__(self, net: BayesianNetwork, heuristic: str = "min-fill") -> None:
        self.net = net
        self.tree = compile_junction_tree(net, heuristic=heuristic)
        select_root(self.tree, "center")

    def infer(
        self,
        evidence: dict[str, str | int] | None = None,
        targets: tuple[str, ...] = (),
    ) -> InferenceResult:
        tree = self.tree
        state = tree.fresh_state()
        if evidence:
            absorb_evidence(state, evidence)
        psi = state.clique_pot  # initial potentials (never mutated below)

        order = tree.bfs_order()
        up: dict[int, Potential] = {}    # message child -> parent
        down: dict[int, Potential] = {}  # message parent -> child
        log_scale = 0.0

        # Collect: leaves to root.  m_up(c) = marg(psi_c × prod m_up(kids), sep)
        for cid in reversed(order):
            parent = tree.parent[cid]
            if parent < 0:
                continue
            work = psi[cid].copy()
            for child, _sep in tree.children[cid]:
                multiply_into(work, up[child])
            sep = tree.separators[tree.parent_sep[cid]]
            msg = marginalize(work, sep.domain.names)
            total = float(msg.values.sum())
            if total <= 0.0:
                raise EvidenceError("evidence has zero probability (empty message)")
            msg.values /= total
            log_scale += math.log(total)
            up[cid] = msg

        # Root belief and P(e).
        root_belief = psi[tree.root].copy()
        for child, _sep in tree.children[tree.root]:
            multiply_into(root_belief, up[child])
        root_total = float(root_belief.values.sum())
        if root_total <= 0.0:
            raise EvidenceError("evidence has zero probability")
        log_p = log_scale + math.log(root_total)

        # Distribute: root to leaves.
        # m_down(c) = marg(psi_p × prod m_up(siblings) × m_down(p), sep)
        for cid in order:
            for child, sep_id in tree.children[cid]:
                work = psi[cid].copy()
                if tree.parent[cid] >= 0:
                    multiply_into(work, down[cid])
                for other, _s in tree.children[cid]:
                    if other != child:
                        multiply_into(work, up[other])
                sep = tree.separators[sep_id]
                msg = marginalize(work, sep.domain.names)
                total = float(msg.values.sum())
                if total > 0.0:
                    msg.values /= total
                down[child] = msg

        # Beliefs on demand per queried variable.
        names = targets or self.net.variable_names
        posteriors: dict[str, np.ndarray] = {}
        belief_cache: dict[int, Potential] = {tree.root: root_belief}
        for name in names:
            cid = tree.smallest_clique_with(name)
            if cid not in belief_cache:
                belief = psi[cid].copy()
                if tree.parent[cid] >= 0:
                    multiply_into(belief, down[cid])
                for child, _sep in tree.children[cid]:
                    multiply_into(belief, up[child])
                belief_cache[cid] = belief
            marg = marginalize(belief_cache[cid], (name,))
            total = float(marg.values.sum())
            posteriors[name] = marg.values / total
        return InferenceResult(posteriors=posteriors, log_evidence=log_p)
