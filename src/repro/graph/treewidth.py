"""Treewidth estimates.

Junction-tree cost is exponential in the induced width of the elimination
order, so these helpers drive both the generators (to build analogs whose
inference is laptop-feasible) and the benchmark reports (to characterise
each network).
"""

from __future__ import annotations

import math

from repro.graph.moralize import Adjacency, copy_adjacency


def ordering_width(adjacency: Adjacency, order: tuple[str, ...] | list[str]) -> int:
    """Induced width of an elimination order (max clique size − 1)."""
    work = copy_adjacency(adjacency)
    width = 0
    for v in order:
        nbrs = list(work[v])
        width = max(width, len(nbrs))
        for i, u in enumerate(nbrs):
            for w in nbrs[i + 1:]:
                work[u].add(w)
                work[w].add(u)
        for u in nbrs:
            work[u].discard(v)
        del work[v]
    return width


def treewidth_upper_bound(adjacency: Adjacency, order: tuple[str, ...] | list[str]) -> int:
    """Alias of :func:`ordering_width`; any order's width bounds treewidth."""
    return ordering_width(adjacency, order)


def log_max_clique_weight(
    cliques: list[frozenset[str]] | tuple[frozenset[str], ...],
    cardinalities: dict[str, int],
) -> float:
    """log10 of the largest clique potential-table size.

    This is the paper's actual complexity driver ("the potential table size
    ... increases dramatically with the number of random variables in the
    clique and the number of states").
    """
    best = 0.0
    for c in cliques:
        w = sum(math.log10(cardinalities[v]) for v in c)
        best = max(best, w)
    return best


def total_clique_weight(
    cliques: list[frozenset[str]] | tuple[frozenset[str], ...],
    cardinalities: dict[str, int],
) -> int:
    """Sum of clique potential-table sizes (total calibration state space)."""
    total = 0
    for c in cliques:
        size = 1
        for v in c:
            size *= cardinalities[v]
        total += size
    return total
