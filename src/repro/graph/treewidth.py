"""Treewidth estimates.

Junction-tree cost is exponential in the induced width of the elimination
order, so these helpers drive both the generators (to build analogs whose
inference is laptop-feasible) and the benchmark reports (to characterise
each network).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graph.moralize import Adjacency, copy_adjacency


def ordering_width(adjacency: Adjacency, order: tuple[str, ...] | list[str]) -> int:
    """Induced width of an elimination order (max clique size − 1)."""
    work = copy_adjacency(adjacency)
    width = 0
    for v in order:
        nbrs = list(work[v])
        width = max(width, len(nbrs))
        for i, u in enumerate(nbrs):
            for w in nbrs[i + 1:]:
                work[u].add(w)
                work[w].add(u)
        for u in nbrs:
            work[u].discard(v)
        del work[v]
    return width


def treewidth_upper_bound(adjacency: Adjacency, order: tuple[str, ...] | list[str]) -> int:
    """Alias of :func:`ordering_width`; any order's width bounds treewidth."""
    return ordering_width(adjacency, order)


def log_max_clique_weight(
    cliques: list[frozenset[str]] | tuple[frozenset[str], ...],
    cardinalities: dict[str, int],
) -> float:
    """log10 of the largest clique potential-table size.

    This is the paper's actual complexity driver ("the potential table size
    ... increases dramatically with the number of random variables in the
    clique and the number of states").
    """
    best = 0.0
    for c in cliques:
        w = sum(math.log10(cardinalities[v]) for v in c)
        best = max(best, w)
    return best


@dataclass(frozen=True)
class EliminationCost:
    """Cost profile of a greedy fill-in simulation (see :func:`fill_in_cost`).

    ``total_table_bytes`` assumes float64 clique potentials (8 bytes per
    entry) and sums over all *elimination* cliques — an upper bound on the
    compiled junction tree's table storage (non-maximal elimination cliques
    get merged during compilation), which is the safe direction for a
    planner deciding whether exact compilation is affordable.
    """

    #: Induced width of the heuristic elimination order (max clique − 1).
    width: int
    #: Entry count of the largest elimination-clique potential table.
    max_clique_entries: int
    #: Total entries across all elimination-clique tables.
    total_table_entries: int
    #: ``8 * total_table_entries`` — estimated float64 storage.
    total_table_bytes: int
    #: ``log10`` of the largest table (finite even when entries overflow).
    log10_max_clique: float


def fill_in_cost(
    adjacency: Adjacency,
    cardinalities: dict[str, int],
    heuristic: str = "min-fill",
) -> EliminationCost:
    """Simulate greedy fill-in and report induced width *and* table bytes.

    Runs the same elimination the junction-tree compiler would (without
    building any potential) and aggregates the clique-table sizes that
    elimination implies.  This is what lets a query planner price exact
    inference *before* committing to an exponential compile.
    """
    from repro.graph.triangulate import triangulate

    result = triangulate(adjacency, heuristic=heuristic,
                         cardinalities=cardinalities)
    width = 0
    max_entries = 1
    total_entries = 0
    log10_max = 0.0
    for clique in result.elimination_cliques:
        width = max(width, len(clique) - 1)
        entries = 1
        log10 = 0.0
        for v in clique:
            entries *= cardinalities[v]
            log10 += math.log10(cardinalities[v])
        max_entries = max(max_entries, entries)
        total_entries += entries
        log10_max = max(log10_max, log10)
    return EliminationCost(
        width=width,
        max_clique_entries=max_entries,
        total_table_entries=total_entries,
        total_table_bytes=8 * total_entries,
        log10_max_clique=log10_max,
    )


def total_clique_weight(
    cliques: list[frozenset[str]] | tuple[frozenset[str], ...],
    cardinalities: dict[str, int],
) -> int:
    """Sum of clique potential-table sizes (total calibration state space)."""
    total = 0
    for c in cliques:
        size = 1
        for v in c:
            size *= cardinalities[v]
        total += size
    return total
