"""Graph algorithms used to compile a Bayesian network into a junction tree.

The compilation pipeline (classic Lauritzen–Spiegelhalter):

1. :func:`repro.graph.moralize.moralize` — undirected moral graph;
2. :func:`repro.graph.triangulate.triangulate` — chordal completion via a
   greedy elimination heuristic (min-fill / min-degree / min-weight);
3. :func:`repro.graph.cliques.elimination_cliques` — maximal cliques;
4. :func:`repro.graph.junction.build_junction_tree` — maximum-weight
   spanning tree over the clique graph, satisfying the running-intersection
   property.

All algorithms work on plain ``dict[str, set[str]]`` adjacency maps and are
implemented from scratch (networkx is only used by the test-suite as an
independent cross-check).
"""

from repro.graph.cliques import elimination_cliques, is_clique, maximal_cliques_check
from repro.graph.junction import JunctionTreeSkeleton, build_junction_tree
from repro.graph.moralize import moral_graph, moralize
from repro.graph.triangulate import (
    EliminationResult,
    is_chordal,
    triangulate,
)
from repro.graph.treewidth import ordering_width, treewidth_upper_bound

__all__ = [
    "moralize",
    "moral_graph",
    "triangulate",
    "EliminationResult",
    "is_chordal",
    "elimination_cliques",
    "is_clique",
    "maximal_cliques_check",
    "build_junction_tree",
    "JunctionTreeSkeleton",
    "ordering_width",
    "treewidth_upper_bound",
]
