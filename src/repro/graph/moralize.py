"""Moralization: DAG → undirected moral graph.

The moral graph connects every node to its parents and "marries" all pairs
of parents of a common child, then drops edge directions.  Every CPT family
``{child} ∪ parents`` is therefore a clique of the moral graph, which is
what lets junction-tree cliques absorb whole CPTs.
"""

from __future__ import annotations

from repro.bn.network import BayesianNetwork

Adjacency = dict[str, set[str]]


def moralize(net: BayesianNetwork) -> Adjacency:
    """Return the moral graph of ``net`` as an adjacency map.

    Every variable appears as a key (isolated nodes map to an empty set).
    """
    adj: Adjacency = {v.name: set() for v in net.variables}
    for cpt in net.cpts:
        family = [p.name for p in cpt.parents] + [cpt.child.name]
        for i, u in enumerate(family):
            for w in family[i + 1:]:
                adj[u].add(w)
                adj[w].add(u)
    return adj


def moral_graph(net: BayesianNetwork) -> Adjacency:
    """Alias of :func:`moralize` (kept for API symmetry with the paper text)."""
    return moralize(net)


def copy_adjacency(adj: Adjacency) -> Adjacency:
    """Deep-copy an adjacency map (triangulation mutates its working copy)."""
    return {u: set(nbrs) for u, nbrs in adj.items()}


def check_symmetric(adj: Adjacency) -> bool:
    """True iff the adjacency map encodes a valid undirected simple graph."""
    for u, nbrs in adj.items():
        if u in nbrs:
            return False
        for w in nbrs:
            if w not in adj or u not in adj[w]:
                return False
    return True
