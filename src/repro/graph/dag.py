"""DAG utilities over Bayesian networks: reachability and d-separation.

d-separation is used by the test-suite as a *structural* oracle: if the DAG
d-separates X from Y given Z, every correct inference engine must report
``P(X | Z, Y=y) == P(X | Z)`` — a strong end-to-end invariant that requires
no numeric reference.
"""

from __future__ import annotations

from collections import deque

from repro.bn.network import BayesianNetwork


def parents_map(net: BayesianNetwork) -> dict[str, set[str]]:
    """Parent-name sets per variable."""
    return {v.name: {p.name for p in net.parents(v.name)} for v in net.variables}


def children_map(net: BayesianNetwork) -> dict[str, set[str]]:
    """Child-name sets per variable."""
    out: dict[str, set[str]] = {v.name: set() for v in net.variables}
    for parent, child in net.edges():
        out[parent].add(child)
    return out


def ancestors(net: BayesianNetwork, names: set[str]) -> set[str]:
    """All (proper and improper) ancestors of ``names``."""
    pmap = parents_map(net)
    seen = set(names)
    stack = list(names)
    while stack:
        n = stack.pop()
        for p in pmap[n]:
            if p not in seen:
                seen.add(p)
                stack.append(p)
    return seen


def descendants(net: BayesianNetwork, name: str) -> set[str]:
    """Proper descendants of ``name``."""
    cmap = children_map(net)
    seen: set[str] = set()
    stack = [name]
    while stack:
        n = stack.pop()
        for c in cmap[n]:
            if c not in seen:
                seen.add(c)
                stack.append(c)
    return seen


def d_separated(net: BayesianNetwork, x: str, y: str, given: set[str] | frozenset[str] = frozenset()) -> bool:
    """True iff ``x`` and ``y`` are d-separated by ``given`` in ``net``.

    Implemented as reachability in the *ball* algorithm (Shachter's Bayes
    ball): BFS over (node, direction) states where direction records whether
    the ball entered from a child (``up``) or from a parent (``down``).
    """
    for n in (x, y, *given):
        net.variable(n)  # raises on unknown names
    if x == y:
        return False
    if x in given or y in given:
        # Conditioning on an endpoint blocks all paths from it.
        return True
    z = set(given)
    pmap = parents_map(net)
    cmap = children_map(net)
    # Nodes with an observed descendant (or observed themselves) unblock
    # colliders.
    obs_or_desc = set(z)
    for n in z:
        obs_or_desc |= {a for a in ancestors(net, {n})}
    # (ancestors of evidence = nodes having an observed descendant, plus z)

    # State: (node, came_from_child?)
    start = [(x, True), (x, False)]
    seen: set[tuple[str, bool]] = set(start)
    queue = deque(start)
    while queue:
        node, from_child = queue.popleft()
        if node == y:
            return False
        moves: list[tuple[str, bool]] = []
        if from_child:
            # Ball arrived from a child (travelling up).
            if node not in z:
                moves += [(p, True) for p in pmap[node]]       # keep going up
                moves += [(c, False) for c in cmap[node]]      # bounce down
        else:
            # Ball arrived from a parent (travelling down).
            if node not in z:
                moves += [(c, False) for c in cmap[node]]      # keep going down
            if node in obs_or_desc:
                moves += [(p, True) for p in pmap[node]]       # collider opens
        for state in moves:
            if state not in seen:
                seen.add(state)
                queue.append(state)
    return True
