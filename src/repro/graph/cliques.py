"""Maximal-clique extraction from an elimination sequence.

Each eliminated node contributes the candidate clique ``{v} ∪ nbrs(v)``
(at elimination time).  Every maximal clique of the triangulated graph
appears among these candidates; non-maximal candidates are subsets of an
earlier candidate and are filtered out.
"""

from __future__ import annotations

from repro.graph.moralize import Adjacency


def elimination_cliques(candidates: tuple[frozenset[str], ...]) -> list[frozenset[str]]:
    """Filter elimination candidates down to the maximal cliques.

    Candidates arrive in elimination order; a candidate that is a subset of
    any *other kept* candidate is dropped.  With a perfect elimination
    order, a candidate can only be contained in a clique formed *later*
    (when its eliminated vertex's neighbourhood has grown into a larger
    clique minus the vertex), so a single backward pass suffices; we keep a
    straightforward O(k²) subset check for robustness, which is cheap since
    k ≤ n.
    """
    kept: list[frozenset[str]] = []
    # Process largest-first so subset checks only need to look at kept items.
    for cand in sorted(candidates, key=len, reverse=True):
        if not any(cand <= k for k in kept):
            kept.append(cand)
    # Deterministic order: by (size desc, sorted members) is unstable across
    # runs only if members tie — include members in the key.
    kept.sort(key=lambda c: (-len(c), tuple(sorted(c))))
    return kept


def is_clique(adjacency: Adjacency | dict[str, frozenset[str]], nodes: frozenset[str]) -> bool:
    """True iff ``nodes`` is pairwise adjacent in ``adjacency``."""
    members = list(nodes)
    for i, u in enumerate(members):
        nbrs = adjacency[u]
        for w in members[i + 1:]:
            if w not in nbrs:
                return False
    return True


def maximal_cliques_check(
    adjacency: Adjacency | dict[str, frozenset[str]],
    cliques: list[frozenset[str]],
) -> bool:
    """Validate that each listed clique is a clique and none contains another.

    (Completeness — that *every* maximal clique is listed — is checked in
    tests against networkx's Bron–Kerbosch implementation.)
    """
    for i, c in enumerate(cliques):
        if not is_clique(adjacency, c):
            return False
        for j, d in enumerate(cliques):
            if i != j and c <= d:
                return False
    return True
