"""Greedy triangulation (chordal completion) of the moral graph.

Exact minimum-fill triangulation is NP-hard, so — like FastBN, pgmpy and
libDAI — we use greedy elimination heuristics.  Eliminating node *v*
connects all of *v*'s remaining neighbours pairwise (the *fill-in*); the
union of original and fill edges is chordal, and the elimination order
certifies it (it is a perfect elimination order of the reversed sequence).

Heuristics
----------
``min-fill``    pick the node whose elimination adds fewest fill edges
                (the standard default; usually smallest cliques);
``min-degree``  pick the node with fewest remaining neighbours;
``min-weight``  pick the node minimising the product of state counts of
                ``{v} ∪ nbrs(v)`` — directly targets potential-table size,
                which is what junction-tree cost actually depends on.

Ties break on insertion order, so results are deterministic.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.errors import JunctionTreeError
from repro.graph.moralize import Adjacency, copy_adjacency

HEURISTICS = ("min-fill", "min-degree", "min-weight")


@dataclass(frozen=True)
class EliminationResult:
    """Output of :func:`triangulate`."""

    #: Triangulated adjacency (original edges plus fill edges).
    adjacency: dict[str, frozenset[str]]
    #: The elimination order used.
    order: tuple[str, ...]
    #: Fill edges added, as sorted tuples.
    fill_edges: tuple[tuple[str, str], ...]
    #: For each eliminated node, the clique ``{v} ∪ nbrs(v)`` at elimination.
    elimination_cliques: tuple[frozenset[str], ...]


def _fill_count(adj: Adjacency, v: str) -> int:
    nbrs = list(adj[v])
    missing = 0
    for i, u in enumerate(nbrs):
        au = adj[u]
        for w in nbrs[i + 1:]:
            if w not in au:
                missing += 1
    return missing


def _log_weight(v: str, adj: Adjacency, cards: dict[str, int]) -> float:
    total = math.log(cards[v])
    for u in adj[v]:
        total += math.log(cards[u])
    return total


def triangulate(
    adjacency: Adjacency,
    heuristic: str = "min-fill",
    cardinalities: dict[str, int] | None = None,
) -> EliminationResult:
    """Triangulate ``adjacency`` with the given greedy heuristic.

    ``cardinalities`` is required for ``min-weight`` (state count per node).
    The input adjacency is not modified.
    """
    if heuristic not in HEURISTICS:
        raise JunctionTreeError(f"unknown heuristic {heuristic!r}; expected one of {HEURISTICS}")
    if heuristic == "min-weight" and cardinalities is None:
        raise JunctionTreeError("min-weight triangulation requires cardinalities")

    work = copy_adjacency(adjacency)
    # Insertion-order rank for deterministic tie-breaking.
    rank = {v: i for i, v in enumerate(adjacency)}

    def score(v: str) -> tuple[float, int]:
        if heuristic == "min-fill":
            return (float(_fill_count(work, v)), rank[v])
        if heuristic == "min-degree":
            return (float(len(work[v])), rank[v])
        assert cardinalities is not None
        return (_log_weight(v, work, cardinalities), rank[v])

    order: list[str] = []
    fill_edges: list[tuple[str, str]] = []
    elim_cliques: list[frozenset[str]] = []
    filled = copy_adjacency(adjacency)
    remaining = set(adjacency)

    while remaining:
        v = min(remaining, key=score)
        nbrs = list(work[v])
        elim_cliques.append(frozenset([v, *nbrs]))
        # Fill-in: connect v's neighbours pairwise, in both graphs.
        for i, u in enumerate(nbrs):
            for w in nbrs[i + 1:]:
                if w not in work[u]:
                    work[u].add(w)
                    work[w].add(u)
                    filled[u].add(w)
                    filled[w].add(u)
                    fill_edges.append(tuple(sorted((u, w))))  # type: ignore[arg-type]
        # Remove v.
        for u in nbrs:
            work[u].discard(v)
        del work[v]
        remaining.discard(v)
        order.append(v)

    return EliminationResult(
        adjacency={u: frozenset(nbrs) for u, nbrs in filled.items()},
        order=tuple(order),
        fill_edges=tuple(fill_edges),
        elimination_cliques=tuple(elim_cliques),
    )


def is_chordal(adjacency: Adjacency | dict[str, frozenset[str]]) -> bool:
    """Chordality test via maximum-cardinality search (Tarjan & Yannakakis).

    MCS produces a perfect elimination order iff the graph is chordal; we
    run MCS and then verify the order.
    """
    adj = {u: set(nbrs) for u, nbrs in adjacency.items()}
    n = len(adj)
    if n == 0:
        return True
    # Maximum-cardinality search with a lazy max-heap.
    weight = {v: 0 for v in adj}
    visited: set[str] = set()
    heap: list[tuple[int, int, str]] = []
    rank = {v: i for i, v in enumerate(adj)}
    for v in adj:
        heapq.heappush(heap, (0, rank[v], v))
    peo: list[str] = []
    while len(peo) < n:
        while True:
            w, _, v = heapq.heappop(heap)
            if v not in visited and -w == weight[v]:
                break
        visited.add(v)
        peo.append(v)
        for u in adj[v]:
            if u not in visited:
                weight[u] += 1
                heapq.heappush(heap, (-weight[u], rank[u], u))
    peo.reverse()  # elimination order: reverse of MCS visit order
    pos = {v: i for i, v in enumerate(peo)}
    # Verify perfect elimination: later neighbours of v must form a clique,
    # it suffices to check the earliest later-neighbour's adjacency.
    for v in peo:
        later = [u for u in adj[v] if pos[u] > pos[v]]
        if not later:
            continue
        pivot = min(later, key=lambda u: pos[u])
        for u in later:
            if u != pivot and u not in adj[pivot]:
                return False
    return True
