"""Junction-tree skeleton: maximum-weight spanning tree over the cliques.

Edges of the clique graph are weighted by separator size ``|Ci ∩ Cj|``; any
maximum-weight spanning tree of the clique graph of a chordal graph
satisfies the running-intersection property (RIP).  For disconnected
networks we join the spanning forest into a single tree with empty
separators (size-1 scalar messages), so every engine can assume one rooted
tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import JunctionTreeError


@dataclass(frozen=True)
class JunctionTreeSkeleton:
    """Pure-structure junction tree: cliques plus tree edges.

    ``cliques[i]`` is the variable-name set of clique *i*; ``edges`` holds
    ``(i, j, separator)`` triples with ``i < j``.
    """

    cliques: tuple[frozenset[str], ...]
    edges: tuple[tuple[int, int, frozenset[str]], ...]

    @property
    def num_cliques(self) -> int:
        return len(self.cliques)

    def neighbors(self) -> list[list[int]]:
        nbrs: list[list[int]] = [[] for _ in self.cliques]
        for i, j, _ in self.edges:
            nbrs[i].append(j)
            nbrs[j].append(i)
        return nbrs

    def validate_rip(self) -> None:
        """Raise unless the running-intersection property holds.

        RIP: for every variable, the cliques containing it induce a
        connected subtree.  Checked by union-find over tree edges restricted
        to each variable.
        """
        for var in sorted({v for c in self.cliques for v in c}):
            holders = [i for i, c in enumerate(self.cliques) if var in c]
            if len(holders) <= 1:
                continue
            parent = {i: i for i in holders}

            def find(x: int) -> int:
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            for i, j, sep in self.edges:
                if var in sep:
                    ri, rj = find(i), find(j)
                    if ri != rj:
                        parent[ri] = rj
            roots = {find(i) for i in holders}
            if len(roots) != 1:
                raise JunctionTreeError(
                    f"running-intersection violated for variable {var!r}: "
                    f"{len(roots)} components among cliques {holders}"
                )


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


def build_junction_tree(cliques: list[frozenset[str]]) -> JunctionTreeSkeleton:
    """Kruskal maximum-weight spanning tree over the clique graph.

    Candidate edges are all clique pairs with non-empty intersection,
    sorted by (separator size desc, deterministic tie-break).  If the
    spanning structure is a forest, components are chained together with
    empty separators so the result is always one tree.
    """
    if not cliques:
        raise JunctionTreeError("cannot build a junction tree with zero cliques")
    n = len(cliques)
    candidates: list[tuple[int, int, int]] = []  # (weight, i, j)
    for i in range(n):
        ci = cliques[i]
        for j in range(i + 1, n):
            w = len(ci & cliques[j])
            if w > 0:
                candidates.append((w, i, j))
    candidates.sort(key=lambda t: (-t[0], t[1], t[2]))

    uf = _UnionFind(n)
    edges: list[tuple[int, int, frozenset[str]]] = []
    for w, i, j in candidates:
        if uf.union(i, j):
            edges.append((i, j, cliques[i] & cliques[j]))
            if len(edges) == n - 1:
                break

    # Join remaining components (disconnected moral graph) with empty
    # separators, chaining component representatives deterministically.
    if len(edges) < n - 1:
        reps = sorted({uf.find(i) for i in range(n)})
        for a, b in zip(reps, reps[1:]):
            if uf.union(a, b):
                edges.append((min(a, b), max(a, b), frozenset()))

    skeleton = JunctionTreeSkeleton(tuple(cliques), tuple(edges))
    skeleton.validate_rip()
    return skeleton
