#!/usr/bin/env python3
"""Bench-regression guard for the execution layer (the CI bench job).

Compares a freshly generated ``BENCH_exec.json`` against the committed
baseline and fails when the execution layer got slower:

1. **per-row timing** — each (path, kernels) row's ``ms_per_case`` may not
   exceed its baseline counterpart by more than ``--max-slowdown``
   (default 25%).  Because CI machines differ from the machine that
   committed the baseline, rows are first *normalised* by the median
   fresh/baseline ratio across all rows — a uniformly slower machine
   passes, a single path regressing relative to its peers fails
   (``--absolute`` disables the normalisation for same-machine runs);
2. **fused speedup floor** — the fresh single-case fused-vs-numpy speedup
   must stay above ``--min-speedup`` (default 1.2; the committed artifact
   documents the acceptance measurement of >= 1.3 on the baseline
   machine).  This one is machine-independent: it is a ratio of two runs
   on the *same* machine;
3. **correctness coupling** — the fresh ``max_abs_diff`` between kernel
   backends must stay at float64 round-off (< 1e-9), so a "speedup" can
   never be bought with diverging answers;
4. **native floors** — when the fresh report says the native C backend
   built (``native.available``): the single-case speedup over fused must
   stay above ``--min-native-speedup`` (default 1.5); the GIL-release
   witness (Python-counter rate during native calls — collapses to ~0
   if a change stops releasing the GIL, on any machine) must stay above
   ``NATIVE_MIN_GIL_RELEASE``; and the 2-worker thread-dispatch scaling
   must clear ``--min-thread-scaling`` (default 1.3) on machines that
   can express it — 4+ cores and a parallel-headroom probe above the
   floor.  Small/shared boxes (2-core CI runners, SMT vCPUs where two
   memory-bound kernel streams serialise) degrade to a bounded-overhead
   floor with an explicit printed note — the same machine-aware posture
   as the cluster gate.  On compiler-less runners every native gate
   skips with the recorded reason.

With ``--sessions-fresh`` it additionally guards the streaming-session
artifact (``BENCH_sessions.json``): the 0.75-overlap row's session-mode
speedup over equivalent cold queries must stay above
``--min-session-speedup`` (default 5.0) — machine-independent, a ratio of
two runs on the same machine — and every row's ``max_abs_diff`` between
the session and cold paths must stay ≤ 1e-12.

With ``--obs`` it guards the observability-overhead artifact
(``BENCH_obs.json``, ``fastbni obsbench``): with tracing disabled the
shipped defaults may cost at most ``--max-obs-overhead`` (default 2%)
throughput vs the no-instrumentation baseline, 1% sampling at most
``--max-obs-sampled`` (default 10%) — both machine-independent paired
ratios — and the full-tracing run must actually have captured traces,
filed slow-log entries, and produced span trees covering every request
stage (the instrument must demonstrably work, not just be cheap).

With ``--cluster`` it guards the sharded-serving artifact
(``BENCH_cluster.json``, ``fastbni clusterbench``): the same-answer
witness must stay at float64 round-off (≤ 1e-9 — sharding may never
change a posterior), and the cluster-vs-single-process speedup must
clear a floor derived from the machine the report was generated on.  A
single server already pipelines parsing (event loop) against execution
(flush thread) across two cores, so boxes with fewer than 4 cores
cannot show scale-out — there the floor degrades to "sharding adds only
bounded overhead" (0.75x).  On >= 4 cores the floor is
``min(3.0, 0.6 * min(workers, cores))``, i.e. the full 3x acceptance
multiple is demanded exactly when the hardware can express it.

With ``--ablation`` it guards the component-ablation artifact
(``BENCH_ablation.json``, ``fastbni ablate``): every one-component-off
variant's deterministic answers must agree with the matrix baseline to
≤ 1e-9 over at least one checked event with zero replay errors, the
*committed* artifact must rank at least ``--min-ablation-components``
components, and any committed contribution ≥ ``--min-contribution``
must retain ``--ablation-retain-frac`` of its measured win in the fresh
run — so a PR that erases a component's contribution (ratio collapsing
to ~1.0x) fails even though every answer is still correct.

Usage::

    python tools/check_bench.py --fresh BENCH_exec.fresh.json \
        [--baseline BENCH_exec.json] [--max-slowdown 0.25] \
        [--min-speedup 1.2] [--absolute] \
        [--sessions-fresh BENCH_sessions.fresh.json] \
        [--min-session-speedup 5.0] \
        [--obs BENCH_obs.fresh.json] [--max-obs-overhead 2.0] \
        [--max-obs-sampled 10.0] \
        [--cluster BENCH_cluster.fresh.json] \
        [--ablation BENCH_ablation.fresh.json]

``--fresh ''`` skips the exec comparison, so a job can gate a single
artifact (e.g. ``--fresh '' --ablation BENCH_ablation.fresh.json``).
Exit code 0 = within budget; 1 = regression (report on stderr).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_rows(report: dict) -> dict[tuple[str, str], float]:
    return {(row["path"], row["kernels"]): float(row["ms_per_case"])
            for row in report.get("rows", [])}


def check(fresh: dict, baseline: dict, max_slowdown: float,
          min_speedup: float, absolute: bool) -> list[str]:
    failures: list[str] = []

    fresh_rows = load_rows(fresh)
    base_rows = load_rows(baseline)
    shared = sorted(set(fresh_rows) & set(base_rows))
    if not shared:
        return ["no comparable rows between fresh and baseline reports"]

    ratios = {key: fresh_rows[key] / base_rows[key] for key in shared}
    scale = 1.0 if absolute else statistics.median(ratios.values())
    for key in shared:
        relative = ratios[key] / scale
        if relative > 1.0 + max_slowdown:
            path, kernels = key
            failures.append(
                f"{path}/{kernels}: {fresh_rows[key]:.3f} ms/case is "
                f"{(relative - 1.0) * 100:.0f}% over baseline "
                f"{base_rows[key]:.3f} ms/case "
                f"(machine-scale {scale:.2f}, budget {max_slowdown:.0%})"
            )

    speedup = float(fresh.get("single_case", {}).get("speedup_fused", 0.0))
    if speedup < min_speedup:
        failures.append(
            f"fused single-case speedup {speedup:.2f}x fell below the "
            f"{min_speedup:.2f}x floor (baseline artifact: "
            f"{baseline.get('single_case', {}).get('speedup_fused', 0.0):.2f}x)"
        )

    max_diff = float(fresh.get("max_abs_diff", 1.0))
    if not max_diff < 1e-9:
        failures.append(
            f"kernel backends diverge: max_abs_diff={max_diff:.3e} "
            "(must stay at float64 round-off)"
        )
    return failures


#: Foreign calls must demonstrably drop the GIL: the report's counter
#: witness (Python increments during native calls / solo rate) collapses
#: to ~0 when the GIL is held through the call, on any machine.
NATIVE_MIN_GIL_RELEASE = 0.05
#: Cores below which the full thread-scaling floor degrades: with 2
#: workers + the dispatching thread contending for < 4 cores (and small
#: boxes typically being shared/SMT vCPUs where two memory-bound kernel
#: streams serialise), the gate only demands bounded threading overhead —
#: the same posture as the cluster small-box floor.
NATIVE_FULL_FLOOR_CORES = 4
#: Degraded floor on small boxes: threading may not *cost* much even
#: where it cannot win.
NATIVE_SMALL_BOX_FLOOR = 0.5


def check_native(fresh: dict, min_native_speedup: float,
                 min_thread_scaling: float) -> tuple[list[str], list[str]]:
    """Native-backend floors: ``(failures, skip_notes)``.

    Three gates, each applied only where it can honestly be measured:

    * the single-case speedup floor whenever the native library built;
    * the GIL-release witness (machine-independent) whenever it built;
    * the thread-scaling floor when the machine has
      ``NATIVE_FULL_FLOOR_CORES``+ cores *and* the pure-ALU headroom
      probe shows two GIL-free calls can overlap at all — otherwise it
      degrades to the bounded-overhead floor with a printed note.
    """
    failures: list[str] = []
    notes: list[str] = []
    native = fresh.get("native")
    if native is None:
        notes.append("native gates skipped: report predates the native "
                     "backend (schema 1)")
        return failures, notes
    if not native.get("available"):
        notes.append("native gates skipped: backend unavailable on this "
                     f"runner ({native.get('reason')})")
        return failures, notes

    speedup = float(fresh.get("single_case", {}).get("speedup_native")
                    or 0.0)
    if speedup < min_native_speedup:
        failures.append(
            f"native single-case speedup over fused is {speedup:.2f}x, "
            f"below the {min_native_speedup:.2f}x floor")

    scaling_row = fresh.get("thread_scaling") or {}
    if "scaling" not in scaling_row:
        failures.append("native backend is available but the report has "
                        "no thread_scaling measurement")
        return failures, notes
    gil_release = float(scaling_row.get("gil_release") or 0.0)
    if gil_release < NATIVE_MIN_GIL_RELEASE:
        failures.append(
            f"GIL-release witness is {gil_release:.3f} (floor "
            f"{NATIVE_MIN_GIL_RELEASE}): native calls no longer release "
            "the GIL")
    headroom = float(scaling_row.get("headroom") or 0.0)
    scaling = float(scaling_row["scaling"])
    cores = int(scaling_row.get("cpu_count") or 0)
    workers = scaling_row.get("workers")
    if cores >= NATIVE_FULL_FLOOR_CORES and headroom >= min_thread_scaling:
        if scaling < min_thread_scaling:
            failures.append(
                f"thread-dispatch calibration scaling is {scaling:.2f}x "
                f"at {workers} workers, below the "
                f"{min_thread_scaling:.2f}x floor (headroom probe showed "
                f"{headroom:.2f}x is available on {cores} cores)")
    else:
        reason = (f"only {cores} core(s)"
                  if cores < NATIVE_FULL_FLOOR_CORES else
                  f"headroom probe measured {headroom:.2f}x")
        notes.append(
            f"thread-scaling floor degraded to bounded-overhead "
            f"({NATIVE_SMALL_BOX_FLOOR:.2f}x): {reason} — this machine "
            f"cannot express {min_thread_scaling:.2f}x (measured "
            f"scaling: {scaling:.2f}x, GIL-release {gil_release:.2f})")
        if scaling < NATIVE_SMALL_BOX_FLOOR:
            failures.append(
                f"thread-dispatch calibration scaling is {scaling:.2f}x "
                f"at {workers} workers — threading costs more than the "
                f"bounded-overhead floor ({NATIVE_SMALL_BOX_FLOOR:.2f}x) "
                "even for a machine that cannot scale")
    return failures, notes


SESSIONS_SCHEMA = "fastbni-bench-sessions-v1"
#: The ISSUE's headline regime: the acceptance floor applies to this row.
SESSIONS_HEADLINE_OVERLAP = 0.75
#: Session answers must agree with cold calibration to float64 round-off.
SESSIONS_MAX_ABS_DIFF = 1e-12


def check_sessions(fresh: dict, min_speedup: float) -> list[str]:
    """Streaming-session floors: headline speedup + posterior agreement."""
    failures: list[str] = []
    if fresh.get("schema") != SESSIONS_SCHEMA:
        return [f"sessions schema mismatch: {fresh.get('schema')!r} "
                f"(expected {SESSIONS_SCHEMA!r})"]
    rows = fresh.get("rows", [])
    headline = next((r for r in rows
                     if abs(float(r["overlap"]) - SESSIONS_HEADLINE_OVERLAP)
                     < 1e-9), None)
    if headline is None:
        failures.append(
            f"sessions report has no {SESSIONS_HEADLINE_OVERLAP}-overlap "
            "row to apply the speedup floor to")
    elif float(headline["speedup"]) < min_speedup:
        failures.append(
            f"session speedup at {SESSIONS_HEADLINE_OVERLAP} overlap is "
            f"{float(headline['speedup']):.2f}x, below the "
            f"{min_speedup:.2f}x floor")
    for row in rows:
        diff = float(row.get("max_abs_diff", 1.0))
        if not diff <= SESSIONS_MAX_ABS_DIFF:
            failures.append(
                f"session/cold divergence at overlap {row['overlap']}: "
                f"max_abs_diff={diff:.3e} (must stay <= "
                f"{SESSIONS_MAX_ABS_DIFF:.0e})")
    return failures


OBS_SCHEMA = "fastbni-bench-obs-v1"
#: Span names a full trace must cover (the server's request stages; the
#: engine-side stages only appear on requests the cache could not serve).
OBS_REQUIRED_SPANS = {"request", "parse", "registry_lookup", "queue_wait",
                      "cache_lookup", "execute", "serialize"}


def check_obs(report: dict, max_overhead: float,
              max_sampled: float) -> list[str]:
    """Observability budgets: tracing-off ≤2%, 1%-sampling bounded, and
    the full-tracing run must prove the instrument works."""
    if report.get("schema") != OBS_SCHEMA:
        return [f"obs schema mismatch: {report.get('schema')!r} "
                f"(expected {OBS_SCHEMA!r})"]
    failures: list[str] = []
    modes = report.get("modes", {})
    for mode, budget in (("off", max_overhead), ("sampled_1pct", max_sampled)):
        row = modes.get(mode)
        if row is None:
            failures.append(f"obs report has no {mode!r} mode")
            continue
        overhead = float(row["overhead_pct"])
        if overhead > budget:
            failures.append(
                f"obs overhead ({mode}): {overhead:.2f}% over the "
                f"no-instrumentation baseline, budget {budget:.2f}%")
    full = modes.get("full")
    if full is None:
        failures.append("obs report has no 'full' mode")
    else:
        tracing = full.get("tracing", {})
        if int(tracing.get("traces_sampled", 0)) <= 0:
            failures.append("full-tracing run sampled no traces")
        if int(tracing.get("slow_queries", 0)) <= 0:
            failures.append("full-tracing run filed no slow-log entries "
                            "(threshold 0 should catch every request)")
    witness = report.get("witness") or {}
    if int(witness.get("executed_traces", 0)) <= 0:
        failures.append("obs witness has no engine-executing traces "
                        "(kernel-hook spans never fired)")
    missing = OBS_REQUIRED_SPANS - set(witness.get("span_names", []))
    if missing:
        failures.append(
            f"obs witness traces lack stage spans: {sorted(missing)}")
    return failures


CLUSTER_SCHEMA = "fastbni-bench-cluster-v1"
#: Sharding may never change an answer: posteriors fetched through the
#: router must match a local sequential engine to float64 round-off.
CLUSTER_MAX_ABS_DIFF = 1e-9
#: Floor on cores < 4: a lone server's two-thread parse/execute pipeline
#: already saturates a small box, so the gate only demands that the
#: router + sharding overhead stays bounded.
CLUSTER_SMALL_BOX_FLOOR = 0.75


def cluster_floor(workers: int, cores: int) -> float:
    """Machine-aware speedup floor for the cluster artifact."""
    if cores < 4:
        return CLUSTER_SMALL_BOX_FLOOR
    return min(3.0, 0.6 * min(workers, cores))


def check_cluster(report: dict) -> list[str]:
    """Cluster floors: machine-aware speedup + same-answer witness."""
    if report.get("schema") != CLUSTER_SCHEMA:
        return [f"cluster schema mismatch: {report.get('schema')!r} "
                f"(expected {CLUSTER_SCHEMA!r})"]
    failures: list[str] = []
    workers = int(report.get("config", {}).get("workers", 0))
    cores = int(report.get("cpu_cores") or 0)
    if workers <= 0 or cores <= 0:
        return ["cluster report lacks config.workers/cpu_cores"]
    floor = cluster_floor(workers, cores)
    speedup = float(report.get("speedup", 0.0))
    if speedup < floor:
        failures.append(
            f"cluster speedup {speedup:.2f}x at {workers} workers on "
            f"{cores} cores fell below the {floor:.2f}x machine-aware "
            "floor")
    same = report.get("same_answer") or {}
    diff = float(same.get("max_abs_diff", 1.0))
    if not diff <= CLUSTER_MAX_ABS_DIFF:
        failures.append(
            f"sharded answers diverge from the local engine: "
            f"max_abs_diff={diff:.3e} (must stay <= "
            f"{CLUSTER_MAX_ABS_DIFF:.0e})")
    if int(same.get("cases", 0)) <= 0:
        failures.append("cluster same-answer witness checked no cases")
    return failures


ABLATION_SCHEMA = "fastbni-bench-ablation-v1"
#: Turning a component off may never change a deterministic answer.
ABLATION_MAX_ABS_DIFF = 1e-9
#: The committed artifact must rank at least this many components.
ABLATION_MIN_COMPONENTS = 5
#: Committed contributions at or above this ratio are guarded: a fresh
#: run must retain a fraction of the measured win.
ABLATION_MIN_CONTRIBUTION = 1.15
#: Fraction of a guarded contribution the fresh run must retain.  A
#: component whose committed win is 1.40x must stay >= 1.10x fresh
#: (at 0.25) — generous under CI noise, a hard fail when a PR erases
#: the contribution entirely (ratio ~1.0).
ABLATION_RETAIN_FRAC = 0.25


def check_ablation(fresh: dict, baseline: dict | None = None, *,
                   min_components: int = ABLATION_MIN_COMPONENTS,
                   min_contribution: float = ABLATION_MIN_CONTRIBUTION,
                   retain_frac: float = ABLATION_RETAIN_FRAC) -> list[str]:
    """Ablation floors: deterministic agreement on every variant, a
    fully ranked committed matrix, and no erased contributions.

    ``fresh`` may cover a component subset (the CI smoke matrix);
    ``baseline`` is the committed full artifact and carries the
    ``min_components`` ranking requirement.  For components present in
    both, a committed contribution >= ``min_contribution`` must retain
    ``retain_frac`` of its measured win in the fresh run.
    """
    if fresh.get("schema") != ABLATION_SCHEMA:
        return [f"ablation schema mismatch: {fresh.get('schema')!r} "
                f"(expected {ABLATION_SCHEMA!r})"]
    failures: list[str] = []
    rows = fresh.get("components", [])
    if not rows:
        return ["ablation report ranks no components"]
    for row in rows:
        name = row.get("component", "?")
        agree = row.get("agreement") or {}
        checked = int(agree.get("checked", 0))
        diff = float(agree.get("max_abs_diff", float("inf")))
        if checked <= 0:
            failures.append(
                f"ablation {name}: no deterministic events were checked "
                "against baseline answers")
        elif not diff <= ABLATION_MAX_ABS_DIFF:
            failures.append(
                f"ablation {name}: answers diverge from baseline: "
                f"max_abs_diff={diff:.3e} over {checked} events (must "
                f"stay <= {ABLATION_MAX_ABS_DIFF:.0e})")
        if int(agree.get("mismatched", 0)) > 0:
            failures.append(
                f"ablation {name}: {agree['mismatched']} deterministic "
                "events disagree with baseline beyond tolerance")
        if int(row.get("errors", 0)) > 0 or int(
                fresh.get("baseline", {}).get("errors", 0)) > 0:
            failures.append(
                f"ablation {name}: replay had request errors "
                f"(component {row.get('errors', 0)}, baseline "
                f"{fresh.get('baseline', {}).get('errors', 0)})")
    if baseline is not None:
        if baseline.get("schema") != ABLATION_SCHEMA:
            return failures + [
                f"ablation baseline schema mismatch: "
                f"{baseline.get('schema')!r} (expected {ABLATION_SCHEMA!r})"]
        base_rows = {r["component"]: r
                     for r in baseline.get("components", [])}
        if len(base_rows) < min_components:
            failures.append(
                f"committed ablation artifact ranks only {len(base_rows)} "
                f"component(s); the acceptance floor is {min_components}")
        for row in rows:
            name = row.get("component", "?")
            base = base_rows.get(name)
            if base is None:
                continue
            base_ratio = float(base.get("rps_ratio", 0.0))
            if base_ratio < min_contribution:
                continue
            if (name == "native_kernels"
                    and not (fresh.get("native") or {}).get("available",
                                                            True)):
                # Toolchain-less runner: native fell back to fused, so
                # the off-variant equals the baseline and there is no
                # contribution to retain here.
                continue
            required = 1.0 + retain_frac * (base_ratio - 1.0)
            fresh_ratio = float(row.get("rps_ratio", 0.0))
            if fresh_ratio < required:
                failures.append(
                    f"ablation {name}: contribution dropped to "
                    f"{fresh_ratio:.2f}x (committed {base_ratio:.2f}x; "
                    f"must retain >= {required:.2f}x = 1 + "
                    f"{retain_frac:.2f} of the committed win)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", default="BENCH_exec.fresh.json",
                        help="freshly generated report (fastbni execbench); "
                             "'' skips the exec check")
    parser.add_argument("--baseline", default=str(REPO_ROOT / "BENCH_exec.json"),
                        help="committed baseline artifact")
    parser.add_argument("--max-slowdown", type=float, default=0.25,
                        help="per-row slowdown budget after machine "
                             "normalisation (0.25 = 25%%)")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="floor on the fresh fused single-case speedup")
    parser.add_argument("--min-native-speedup", type=float, default=1.5,
                        help="floor on the fresh native-over-fused "
                             "single-case speedup (skipped with a reason "
                             "when the native backend cannot build)")
    parser.add_argument("--min-thread-scaling", type=float, default=1.3,
                        help="floor on the native 2-worker thread-dispatch "
                             "scaling (enforced only where the parallel-"
                             "headroom probe shows the machine can "
                             "express it)")
    parser.add_argument("--absolute", action="store_true",
                        help="skip machine normalisation (same-machine runs)")
    parser.add_argument("--sessions-fresh", default="",
                        help="freshly generated sessions report "
                             "(fastbni sessions); '' skips the check")
    parser.add_argument("--min-session-speedup", type=float, default=5.0,
                        help="floor on the fresh session-vs-cold speedup "
                             "at 0.75 evidence overlap")
    parser.add_argument("--obs", default="",
                        help="observability-overhead report "
                             "(fastbni obsbench); '' skips the check")
    parser.add_argument("--max-obs-overhead", type=float, default=2.0,
                        help="throughput cost budget (%%) of the shipped "
                             "tracing-off defaults vs the bare baseline")
    parser.add_argument("--max-obs-sampled", type=float, default=10.0,
                        help="throughput cost budget (%%) of 1%% trace "
                             "sampling vs the bare baseline")
    parser.add_argument("--cluster", default="",
                        help="sharded-serving report (fastbni "
                             "clusterbench); '' skips the check")
    parser.add_argument("--ablation", default="",
                        help="ablation-matrix report (fastbni ablate); "
                             "'' skips the check")
    parser.add_argument("--ablation-baseline",
                        default=str(REPO_ROOT / "BENCH_ablation.json"),
                        help="committed ablation artifact the fresh run "
                             "is held against")
    parser.add_argument("--min-ablation-components", type=int,
                        default=ABLATION_MIN_COMPONENTS,
                        help="components the committed ablation artifact "
                             "must rank")
    parser.add_argument("--min-contribution", type=float,
                        default=ABLATION_MIN_CONTRIBUTION,
                        help="committed rps_ratio above which a "
                             "component's contribution is guarded")
    parser.add_argument("--ablation-retain-frac", type=float,
                        default=ABLATION_RETAIN_FRAC,
                        help="fraction of a guarded committed win the "
                             "fresh run must retain")
    args = parser.parse_args(argv)

    failures: list[str] = []
    skip_notes: list[str] = []
    fresh = None
    if args.fresh:
        fresh = json.loads(Path(args.fresh).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
        if fresh.get("schema") != baseline.get("schema"):
            print(f"schema mismatch: fresh {fresh.get('schema')} vs baseline "
                  f"{baseline.get('schema')}", file=sys.stderr)
            return 1
        failures += check(fresh, baseline, args.max_slowdown,
                          args.min_speedup, args.absolute)
        native_failures, native_notes = check_native(
            fresh, args.min_native_speedup, args.min_thread_scaling)
        failures += native_failures
        skip_notes += native_notes
    sessions_note = ""
    if args.sessions_fresh:
        sessions = json.loads(Path(args.sessions_fresh).read_text())
        failures += check_sessions(sessions, args.min_session_speedup)
        headline = next(
            (r for r in sessions.get("rows", [])
             if abs(float(r["overlap"]) - SESSIONS_HEADLINE_OVERLAP) < 1e-9),
            None)
        if headline is not None:
            sessions_note = (f", session speedup "
                             f"{float(headline['speedup']):.2f}x at "
                             f"{SESSIONS_HEADLINE_OVERLAP} overlap "
                             f"(floor {args.min_session_speedup:.2f}x)")
    obs_note = ""
    if args.obs:
        obs = json.loads(Path(args.obs).read_text())
        failures += check_obs(obs, args.max_obs_overhead,
                              args.max_obs_sampled)
        off = obs.get("modes", {}).get("off", {})
        if "overhead_pct" in off:
            obs_note = (f", tracing-off overhead "
                        f"{float(off['overhead_pct']):.2f}% "
                        f"(budget {args.max_obs_overhead:.2f}%)")
    cluster_note = ""
    if args.cluster:
        cluster = json.loads(Path(args.cluster).read_text())
        failures += check_cluster(cluster)
        cfg = cluster.get("config", {})
        if "speedup" in cluster and cfg.get("workers"):
            floor = cluster_floor(int(cfg["workers"]),
                                  int(cluster.get("cpu_cores") or 0))
            cluster_note = (f", cluster speedup "
                            f"{float(cluster['speedup']):.2f}x at "
                            f"{cfg['workers']} workers/"
                            f"{cluster.get('cpu_cores')} cores "
                            f"(floor {floor:.2f}x)")
    ablation_note = ""
    if args.ablation:
        ablation = json.loads(Path(args.ablation).read_text())
        ablation_baseline = None
        baseline_path = Path(args.ablation_baseline)
        if baseline_path.exists():
            ablation_baseline = json.loads(baseline_path.read_text())
        else:
            failures.append(
                f"no committed ablation artifact at {baseline_path}")
        failures += check_ablation(
            ablation, ablation_baseline,
            min_components=args.min_ablation_components,
            min_contribution=args.min_contribution,
            retain_frac=args.ablation_retain_frac)
        rows = ablation.get("components", [])
        if rows:
            top = rows[0]
            ablation_note = (f", ablation: {len(rows)} component(s), top "
                             f"{top.get('component')} "
                             f"{float(top.get('rps_ratio', 0.0)):.2f}x")
    for note in skip_notes:
        print(f"note: {note}")
    if failures:
        print(f"\nBENCH REGRESSION ({len(failures)} problem(s)):",
              file=sys.stderr)
        for failure in failures:
            print(f"- {failure}", file=sys.stderr)
        return 1
    exec_note = "exec check skipped"
    native_note = ""
    if fresh is not None:
        speedup = fresh.get("single_case", {}).get("speedup_fused", 0.0)
        exec_note = (f"{len(load_rows(fresh))} rows within "
                     f"{args.max_slowdown:.0%} of baseline, fused speedup "
                     f"{speedup:.2f}x (floor {args.min_speedup:.2f}x)")
        if (fresh.get("native") or {}).get("available"):
            native_speedup = fresh["single_case"].get("speedup_native") or 0.0
            native_note = (f", native speedup {float(native_speedup):.2f}x "
                           f"(floor {args.min_native_speedup:.2f}x)")
            scaling_row = fresh.get("thread_scaling") or {}
            if "scaling" in scaling_row:
                native_note += (f", thread scaling "
                                f"{float(scaling_row['scaling']):.2f}x")
    print(f"bench ok: {exec_note}{native_note}"
          f"{sessions_note}{obs_note}{cluster_note}{ablation_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
