#!/usr/bin/env python3
"""Executable-documentation checker (the CI docs job).

Three guarantees, so the docs cannot silently rot:

1. every fenced ``python`` code block in ``docs/**/*.md`` and
   ``README.md`` **executes** — blocks in one file run top-to-bottom in a
   shared namespace (a page is one narrative), with the repo root as the
   working directory and ``src/`` importable;
2. every relative markdown link (and ``#anchor`` fragment) in those
   files resolves — to an existing file, and to a real heading when a
   fragment is given (GitHub slug rules);
3. every script in ``examples/`` runs to completion (``--skip-examples``
   to omit; the heavy one takes ~a minute).

Blocks that must not execute use a plain fence or any other info string
(```` ```text ````, ```` ```bash ````, …).

Exit code 0 = everything passed; failures print a per-item report.
Usage: ``python tools/check_docs.py [--skip-examples] [--verbose]``.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md"]
EXAMPLE_TIMEOUT_S = 600

_FENCE_RE = re.compile(r"^```([^\n`]*)\n(.*?)^```\s*$", re.S | re.M)
#: Markdown links/images: [text](target) — code spans are not parsed, so
#: keep doc prose free of literal ``](`` outside real links.
_LINK_RE = re.compile(r"\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.M)


def doc_files() -> list[Path]:
    docs = sorted((REPO_ROOT / "docs").rglob("*.md"))
    return [p for p in DOC_FILES if p.exists()] + docs


def python_blocks(text: str) -> list[tuple[int, str]]:
    """``(line_number, source)`` for every executable ``python`` block."""
    blocks = []
    for match in _FENCE_RE.finditer(text):
        info = match.group(1).strip().lower()
        if info == "python":
            line = text[: match.start()].count("\n") + 2
            blocks.append((line, match.group(2)))
    return blocks


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (enough of it for our docs).

    Emphasis markers are stripped but underscores are kept — GitHub's
    slugger preserves ``_`` from code spans.
    """
    slug = re.sub(r"[`*~]", "", heading.strip().lower())
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def check_blocks(path: Path, verbose: bool) -> list[str]:
    failures = []
    namespace: dict = {"__name__": "__main__"}
    for line, source in python_blocks(path.read_text()):
        label = f"{path.relative_to(REPO_ROOT)}:{line}"
        if verbose:
            print(f"  exec {label}")
        try:
            code = compile(source, str(label), "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs
        except Exception:
            failures.append(
                f"{label}: code block failed\n{traceback.format_exc(limit=3)}")
    return failures


def check_links(path: Path) -> list[str]:
    failures = []
    text = path.read_text()
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (REPO_ROOT / file_part.lstrip("/") if target.startswith("/")
                        else (path.parent / file_part)).resolve()
            if not resolved.exists():
                failures.append(f"{path.relative_to(REPO_ROOT)}: broken link "
                                f"-> {target}")
                continue
        else:
            resolved = path
        if fragment and resolved.suffix == ".md":
            slugs = {github_slug(h) for h in _HEADING_RE.findall(resolved.read_text())}
            if fragment not in slugs:
                failures.append(f"{path.relative_to(REPO_ROOT)}: broken anchor "
                                f"-> {target}")
    return failures


def check_examples(verbose: bool) -> list[str]:
    failures = []
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    for script in sorted((REPO_ROOT / "examples").glob("*.py")):
        label = script.relative_to(REPO_ROOT)
        if verbose:
            print(f"  run  {label}")
        try:
            proc = subprocess.run(
                [sys.executable, str(script)], cwd=REPO_ROOT, env=env,
                capture_output=True, text=True, timeout=EXAMPLE_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            failures.append(f"{label}: timed out after {EXAMPLE_TIMEOUT_S}s")
            continue
        if proc.returncode != 0:
            tail = "\n".join(proc.stderr.strip().splitlines()[-12:])
            failures.append(f"{label}: exited {proc.returncode}\n{tail}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--skip-examples", action="store_true",
                        help="only check doc code blocks and links")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    os.chdir(REPO_ROOT)

    failures: list[str] = []
    files = doc_files()
    blocks = 0
    for path in files:
        blocks += len(python_blocks(path.read_text()))
        failures += check_blocks(path, args.verbose)
        failures += check_links(path)
    examples = 0
    if not args.skip_examples:
        examples = len(list((REPO_ROOT / "examples").glob("*.py")))
        failures += check_examples(args.verbose)

    if failures:
        print(f"\nFAILED ({len(failures)} problem(s)):", file=sys.stderr)
        for failure in failures:
            print(f"- {failure}", file=sys.stderr)
        return 1
    print(f"docs ok: {len(files)} files, {blocks} python blocks executed, "
          f"links resolved, {examples} examples ran")
    return 0


if __name__ == "__main__":
    sys.exit(main())
