"""Setuptools shim.

This environment has no ``wheel`` package and no network access, so
``pip install -e .`` cannot build a modern editable wheel.  The shim lets
``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
once wheel is available) install the package from this metadata.

``package_data`` ships the bundled ``.bif`` ground-truth networks inside
the wheel/sdist so :func:`repro.bn.datasets.load_dataset` (which reads
them through ``importlib.resources``) works from an installed package,
not just a source checkout.
"""

from setuptools import find_packages, setup

setup(
    name="repro-fastbni",
    version="1.0.0",
    description="Fast parallel exact inference on Bayesian networks (PPoPP'23 reproduction)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.bn.datasets": ["*.bif"]},
    include_package_data=True,
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["fastbni = repro.cli:main"]},
)
