"""Setuptools shim.

This environment has no ``wheel`` package and no network access, so
``pip install -e .`` cannot build a modern editable wheel.  The shim lets
``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
once wheel is available) install the package from pyproject metadata.
"""

from setuptools import setup

setup()
